// Shared vocabulary of the cluster layer: the versioned ShardMap that
// routes line -> cluster shard -> replica nodes, and the wire formats
// of every protocol-v2 op (MODEL_PUSH, SHARD_MAP, HEARTBEAT, HEALTH,
// HANDOFF, TOPN_SHARDS). The payload (de)serializers live here — on
// top of net::PayloadWriter/Reader — so `net` stays a pure transport
// and the cluster owns its own formats.
//
// Determinism rules that everything above relies on:
//   - shard_of_line is a pure function (splitmix64 finalizer mod
//     n_shards), identical on every node and every router;
//   - ShardMap updates are epoch-ordered: a node adopts a pushed map
//     only when its epoch is strictly newer, and rebuild_shard_map is
//     a pure function of (base map, dead set) — two parties that agree
//     on who is dead derive byte-identical maps independently;
//   - floats cross the wire as raw IEEE-754 bits (PayloadWriter::f32/
//     f64), so replicated state and handed-off state score
//     byte-identically to the origin node.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "serve/line_state_store.hpp"

namespace nevermind::cluster {

using NodeId = std::uint32_t;

/// Where one node listens, and whether the map currently believes it
/// is alive. `alive` is part of the map (not local state) so that a
/// pushed map carries the failover decision with it.
struct Endpoint {
  NodeId node = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool alive = true;
};

/// Versioned routing table: line -> shard (shard_of_line) -> replica
/// set (`replicas[shard]`, indices into `nodes`, primary first).
struct ShardMap {
  std::uint64_t epoch = 0;
  std::uint32_t n_shards = 0;
  std::uint32_t replication = 1;
  std::vector<Endpoint> nodes;
  std::vector<std::vector<std::uint16_t>> replicas;

  [[nodiscard]] bool valid() const noexcept;
  /// Index into `nodes` of the endpoint with this id.
  [[nodiscard]] std::optional<std::size_t> index_of(NodeId node) const;
  /// First alive replica of `shard`, or nullopt when the whole replica
  /// set is down.
  [[nodiscard]] std::optional<std::size_t> primary_of(
      std::uint32_t shard) const;
};

/// Pure line->shard hash, independent of the store's internal
/// sharding. Every node and router computes the same value.
[[nodiscard]] std::uint32_t shard_of_line(dslsim::LineId line,
                                          std::uint32_t n_shards) noexcept;

/// Initial map at epoch 1: shard s's replicas are nodes
/// (s + r) % n_nodes for r in [0, replication) — every node is primary
/// for an equal slice and backup for its successors'.
[[nodiscard]] ShardMap make_shard_map(std::vector<Endpoint> nodes,
                                      std::uint32_t n_shards,
                                      std::uint32_t replication);

/// Deterministic failover rebuild: epoch+1, `dead` nodes marked not
/// alive, and each shard's replica list rotated minimally so the first
/// alive replica leads (relative order otherwise preserved — a revived
/// node does not steal primaryship back). Pure function of its inputs.
[[nodiscard]] ShardMap rebuild_shard_map(const ShardMap& base,
                                         const std::vector<NodeId>& dead);

void write_shard_map(net::PayloadWriter& w, const ShardMap& map);
[[nodiscard]] bool read_shard_map(net::PayloadReader& r, ShardMap& map);

// ---- HEARTBEAT ---------------------------------------------------------

/// Periodic announcement; the receiver echoes with its own id (same
/// seq), so one roundtrip refreshes liveness in both directions.
struct Heartbeat {
  NodeId from = 0;
  std::uint64_t map_epoch = 0;
  std::uint64_t seq = 0;
};

void write_heartbeat(net::PayloadWriter& w, const Heartbeat& hb);
[[nodiscard]] bool read_heartbeat(net::PayloadReader& r, Heartbeat& hb);

// ---- HEALTH ------------------------------------------------------------

enum class PeerState : std::uint8_t { kUp = 0, kSuspect = 1, kDead = 2 };
[[nodiscard]] const char* peer_state_name(PeerState s) noexcept;

struct PeerHealth {
  NodeId node = 0;
  PeerState state = PeerState::kUp;
};

/// HEALTH reply: one node's counters plus its membership view.
struct NodeHealth {
  NodeId node = 0;
  std::uint64_t map_epoch = 0;
  std::uint64_t model_version = 0;
  std::uint64_t n_lines = 0;
  std::uint64_t measurements = 0;
  std::uint64_t tickets = 0;
  std::vector<PeerHealth> peers;
};

void write_node_health(net::PayloadWriter& w, const NodeHealth& h);
[[nodiscard]] bool read_node_health(net::PayloadReader& r, NodeHealth& h);

// ---- HANDOFF -----------------------------------------------------------

/// Paginated exact line-state transfer. Pull mode (push == 0) asks the
/// target for a page of `shard`'s lines starting at `cursor` (index
/// into the target's ascending line-id list for that shard); the reply
/// is a HandoffPage. Push mode (push == 1) carries a page of
/// ExportedLine records for the target to import; the reply is the
/// imported count (u32).
struct HandoffRequest {
  std::uint8_t push = 0;
  std::uint32_t shard = 0;
  /// The sharding the requester used (must match the map's).
  std::uint32_t n_shards = 0;
  std::uint32_t cursor = 0;
  std::uint32_t max_lines = 256;
};

struct HandoffPage {
  std::uint32_t next_cursor = 0;
  std::uint8_t done = 1;
  std::vector<serve::ExportedLine> lines;
};

void write_handoff_request(net::PayloadWriter& w, const HandoffRequest& req);
[[nodiscard]] bool read_handoff_request(net::PayloadReader& r,
                                        HandoffRequest& req);

void write_exported_line(net::PayloadWriter& w, const serve::ExportedLine& e);
[[nodiscard]] bool read_exported_line(net::PayloadReader& r,
                                      serve::ExportedLine& e);

void write_handoff_page(net::PayloadWriter& w, const HandoffPage& page);
[[nodiscard]] bool read_handoff_page(net::PayloadReader& r,
                                     HandoffPage& page);

// ---- TOPN_SHARDS -------------------------------------------------------

/// kTopN restricted to the lines of an explicit shard set — the router
/// asks each node to rank only the shards it is primary for, then
/// merges. The reply payload is the kTopN format (u32 count + scores).
struct TopNShardsRequest {
  std::uint32_t n = 0;
  std::uint32_t n_shards = 0;
  std::vector<std::uint32_t> shards;
};

void write_top_n_shards(net::PayloadWriter& w, const TopNShardsRequest& req);
[[nodiscard]] bool read_top_n_shards(net::PayloadReader& r,
                                     TopNShardsRequest& req);

}  // namespace nevermind::cluster
