#include "cluster/membership.hpp"

namespace nevermind::cluster {

void Membership::add_peer(NodeId node, TimePoint now, bool alive) {
  const auto it = peers_.find(node);
  if (it != peers_.end()) return;
  Peer p;
  p.state = alive ? PeerState::kUp : PeerState::kDead;
  p.last_seen = now;
  peers_.emplace(node, p);
}

void Membership::remove_peer(NodeId node) { peers_.erase(node); }

std::vector<Transition> Membership::record_heartbeat(NodeId node,
                                                     TimePoint now) {
  std::vector<Transition> out;
  const auto it = peers_.find(node);
  if (it == peers_.end()) return out;
  Peer& p = it->second;
  p.last_seen = now;
  if (p.state != PeerState::kUp) {
    out.push_back({node, p.state, PeerState::kUp});
    p.state = PeerState::kUp;
    ++version_;
  }
  return out;
}

std::vector<Transition> Membership::tick(TimePoint now) {
  std::vector<Transition> out;
  for (auto& [node, p] : peers_) {
    if (p.state == PeerState::kDead) continue;
    const auto silent = now - p.last_seen;
    if (p.state == PeerState::kUp && silent >= config_.suspect_after) {
      out.push_back({node, PeerState::kUp, PeerState::kSuspect});
      p.state = PeerState::kSuspect;
      ++version_;
    }
    if (p.state == PeerState::kSuspect && silent >= config_.dead_after) {
      out.push_back({node, PeerState::kSuspect, PeerState::kDead});
      p.state = PeerState::kDead;
      ++version_;
    }
  }
  return out;
}

PeerState Membership::state_of(NodeId node) const {
  const auto it = peers_.find(node);
  return it != peers_.end() ? it->second.state : PeerState::kDead;
}

std::vector<NodeId> Membership::dead_peers() const {
  std::vector<NodeId> out;
  for (const auto& [node, p] : peers_) {
    if (p.state == PeerState::kDead) out.push_back(node);
  }
  return out;
}

std::vector<PeerHealth> Membership::snapshot() const {
  std::vector<PeerHealth> out;
  out.reserve(peers_.size());
  for (const auto& [node, p] : peers_) out.push_back({node, p.state});
  return out;
}

}  // namespace nevermind::cluster
