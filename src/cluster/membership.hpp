// Heartbeat failure-detection state machine, in the style of periodic-
// announcement discovery protocols (sACN source-loss detection): every
// peer is up while announcements keep arriving, becomes suspect after
// suspect_after without one, dead after dead_after, and rejoins (back
// to up) the moment one arrives again.
//
// The class is a pure state machine over caller-supplied time points —
// no clock, no threads, no sockets — so the up -> suspect -> dead ->
// rejoin ladder is unit-testable with a fake clock, and the beacon
// thread in ClusterNode drives it with steady_clock under a mutex.
// Peers iterate in ascending id order and transitions are reported in
// that order, which keeps every observer's view of "who died first"
// deterministic for a given input sequence.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

#include "cluster/types.hpp"

namespace nevermind::cluster {

struct MembershipConfig {
  /// No heartbeat for this long: up -> suspect.
  std::chrono::milliseconds suspect_after{250};
  /// No heartbeat for this long: suspect -> dead.
  std::chrono::milliseconds dead_after{750};
};

/// One observed state change, reported by tick()/record_heartbeat().
struct Transition {
  NodeId node = 0;
  PeerState from = PeerState::kUp;
  PeerState to = PeerState::kUp;
};

class Membership {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit Membership(MembershipConfig config = {}) noexcept
      : config_(config) {}

  /// Start tracking a peer (idempotent). A peer added as not-alive
  /// starts dead — adopting a map that already marks a node down must
  /// not resurrect it locally.
  void add_peer(NodeId node, TimePoint now, bool alive = true);
  void remove_peer(NodeId node);

  /// A heartbeat (or any successful exchange) from `node` arrived at
  /// `now`. Returns the rejoin transition when the peer was suspect or
  /// dead, else nothing.
  std::vector<Transition> record_heartbeat(NodeId node, TimePoint now);

  /// Advance the timeout ladder to `now`; returns every transition it
  /// caused, in ascending node-id order.
  std::vector<Transition> tick(TimePoint now);

  [[nodiscard]] PeerState state_of(NodeId node) const;
  [[nodiscard]] bool knows(NodeId node) const {
    return peers_.count(node) != 0;
  }
  /// Ids of peers currently dead, ascending.
  [[nodiscard]] std::vector<NodeId> dead_peers() const;
  /// Snapshot of every peer's state, ascending by id.
  [[nodiscard]] std::vector<PeerHealth> snapshot() const;
  /// Bumps on every transition — cheap "did anything change" probe.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  struct Peer {
    PeerState state = PeerState::kUp;
    TimePoint last_seen{};
  };

  MembershipConfig config_;
  std::map<NodeId, Peer> peers_;  // ordered: deterministic iteration
  std::uint64_t version_ = 0;
};

}  // namespace nevermind::cluster
