// One member of the serving cluster: a LineStateStore + ModelRegistry
// + ScoringService + net::Server bundle, extended with the protocol-v2
// cluster ops via the server's op-handler hook, plus a beacon thread
// that heartbeats every peer in the current ShardMap and folds the
// echoes through the Membership state machine.
//
// Division of labour:
//   - the server thread owns every client connection and runs the op
//     handler (MODEL_PUSH applies through the registry's RCU hot-swap,
//     SHARD_MAP adopts strictly-newer epochs, HANDOFF exports/imports
//     exact line state, TOPN_SHARDS ranks this node's shard subset);
//   - the beacon thread pings peers with bounded-backoff reconnects,
//     ticks the failure detector, and on any death/rejoin transition
//     rebuilds the shard map locally with the pure rebuild function —
//     every surviving node that agrees on the dead set derives the
//     same epoch+1 map without coordination;
//   - kill() is the failure-injection path: the loop stops without
//     drain and every socket closes, so peers and routers observe an
//     abrupt crash (reset/EOF), not a goodbye.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/membership.hpp"
#include "cluster/types.hpp"
#include "net/server.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace nevermind::cluster {

struct ClusterNodeConfig {
  NodeId node_id = 0;
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read the result from port().
  std::uint16_t port = 0;
  std::size_t store_shards = 16;
  std::size_t window_capacity = 8;
  /// Handoff pages and model artefacts are far bigger than scoring
  /// frames, so cluster servers accept larger payloads than plain ones.
  std::size_t max_payload = 8U << 20;
  std::chrono::milliseconds heartbeat_interval{25};
  MembershipConfig membership{};
  /// Deadlines for the beacon's peer clients — a dead peer costs one
  /// bounded timeout, never a hang.
  std::chrono::milliseconds peer_connect_timeout{100};
  std::chrono::milliseconds peer_request_timeout{250};
};

class ClusterNode {
 public:
  explicit ClusterNode(ClusterNodeConfig config = {});
  ~ClusterNode();
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Bind + listen + spawn the server and beacon threads. False (with
  /// *error set) on failure.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Graceful shutdown: beacon stops, server drains, threads join.
  void stop();

  /// Abrupt death for failure injection: no drain, no goodbyes; every
  /// socket (listener included) closes immediately.
  void kill();

  /// Async-signal-safe stop request (SIGINT/SIGTERM handlers). Pair
  /// with wait() then stop() to reap threads.
  void request_stop() noexcept;

  /// Block until the server thread exits (after request_stop or a
  /// peer-initiated drain).
  void wait();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ClusterNodeConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool running() const noexcept {
    return server_thread_.joinable();
  }

  /// Current map under the node mutex (copy).
  [[nodiscard]] ShardMap map_snapshot() const;
  /// The HEALTH reply this node would serve right now.
  [[nodiscard]] NodeHealth health_snapshot() const;

  [[nodiscard]] const serve::LineStateStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const serve::ModelRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] net::OpOutcome handle_op(const net::Frame& frame,
                                         net::PayloadWriter& out);
  [[nodiscard]] net::OpOutcome handle_model_push(const net::Frame& frame,
                                                 net::PayloadWriter& out);
  [[nodiscard]] net::OpOutcome handle_shard_map(const net::Frame& frame,
                                                net::PayloadWriter& out);
  [[nodiscard]] net::OpOutcome handle_handoff(const net::Frame& frame,
                                              net::PayloadWriter& out);
  [[nodiscard]] net::OpOutcome handle_top_n_shards(const net::Frame& frame,
                                                   net::PayloadWriter& out);
  void beacon_loop();
  /// Register every map node (except self) with the failure detector.
  void sync_peers_locked(Clock::time_point now);
  /// Any death/rejoin: derive the epoch+1 map from the current dead
  /// set. Pure-function rebuild keeps independent observers identical.
  void rebuild_map_locked();
  /// Line ids this node holds that fall into `shard` under `n_shards`,
  /// ascending.
  [[nodiscard]] std::vector<dslsim::LineId> lines_of_shard(
      std::uint32_t shard, std::uint32_t n_shards) const;

  ClusterNodeConfig config_;
  serve::LineStateStore store_;
  serve::ModelRegistry registry_;
  serve::ScoringService service_;
  std::unique_ptr<net::Server> server_;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;  // guards map_ and membership_
  ShardMap map_;
  Membership membership_;

  std::thread server_thread_;
  std::thread beacon_thread_;
  std::mutex beacon_mutex_;
  std::condition_variable beacon_cv_;
  bool beacon_stop_ = false;
};

}  // namespace nevermind::cluster
