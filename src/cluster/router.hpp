// Client-side router of the cluster: hashes line -> shard
// (shard_of_line) -> replica set (ShardMap) and speaks protocol v2 to
// the nodes with timeout-bounded clients.
//
//   - Writes (ingest / ingest_ticket) fan out to *every* alive replica
//     of the line's shard — replication is synchronous and the store's
//     ingest is idempotent for a (line, week) re-delivery, so a retry
//     after a partial failure cannot skew replica state. A write
//     succeeds when at least one replica accepted it.
//   - Reads (score) go to the shard's primary (first alive replica)
//     and fail over down the replica list on timeout or peer death.
//   - top_n asks each node to rank only the shards it is primary for
//     (TOPN_SHARDS) and merges by (score desc, line asc) — because
//     line ids are unique and each node ranks an ascending-id subset
//     with the service's own comparator, the merge reproduces the
//     single-node ranking byte for byte.
//   - A replica that fails its (bounded) retries is marked dead: the
//     router derives the epoch+1 map with the same pure
//     rebuild_shard_map the nodes use, and pushes it to the survivors
//     (best effort — they usually got there first via heartbeats).
//
// One ShardRouter per driver thread: the router itself is
// single-threaded by design (the loadgen model), all cross-router
// coordination happens through the epoch-ordered maps on the nodes.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/types.hpp"
#include "core/scoring_kernel.hpp"
#include "net/client.hpp"
#include "serve/micro_batcher.hpp"

namespace nevermind::cluster {

struct RouterOptions {
  std::chrono::milliseconds connect_timeout{250};
  std::chrono::milliseconds request_timeout{500};
  std::size_t max_payload = 8U << 20;
  /// Requests attempted per replica (with one reconnect in between)
  /// before it is declared dead.
  std::size_t attempts_per_replica = 2;
  /// Rounds over the whole replica set before a write gives up.
  std::size_t write_rounds = 3;
  net::ClientOptions client_options() const {
    return {connect_timeout, request_timeout, max_payload};
  }
  /// Backoff between write rounds when no replica answered.
  std::chrono::milliseconds round_backoff_initial{10};
  std::chrono::milliseconds round_backoff_max{200};
  /// Lines per HANDOFF page during readmit().
  std::size_t handoff_page = 256;
  /// Push the rebuilt map to survivors after marking a node dead.
  bool push_map_on_failover = true;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  /// Reads answered by a non-primary replica.
  std::uint64_t failovers = 0;
  std::uint64_t nodes_marked_dead = 0;
  std::uint64_t map_rebuilds = 0;
  std::uint64_t map_pushes = 0;
  std::uint64_t write_failures = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardMap map, RouterOptions options = {});

  /// Eagerly connect to every alive node. False (error recorded) when
  /// any connect fails; lazy per-request connects still apply later.
  [[nodiscard]] bool connect_all();

  /// Serialize the kernel once and push it to every alive node; each
  /// applies it through its registry's RCU hot-swap. True when every
  /// alive node accepted.
  [[nodiscard]] bool push_model(const core::ScoringKernel& kernel);

  /// Push the router's current map to every alive node (epoch-ordered
  /// adoption on their side). True when every alive node answered.
  [[nodiscard]] bool broadcast_map();

  /// Replicated write. True when >= 1 alive replica accepted.
  [[nodiscard]] bool ingest(const serve::LineMeasurement& m);
  [[nodiscard]] bool ingest_ticket(dslsim::LineId line, util::Day day);

  /// Primary read with replica failover.
  [[nodiscard]] std::optional<serve::ServeScore> score(dslsim::LineId line);

  /// Cluster-wide ranking: per-primary TOPN_SHARDS fan-out + exact
  /// merge. nullopt when some shard has no live replica.
  [[nodiscard]] std::optional<std::vector<serve::ServeScore>> top_n(
      std::uint32_t n);

  /// HEALTH of one node (by id).
  [[nodiscard]] std::optional<NodeHealth> health(NodeId node);

  /// Re-admit a restarted node at (possibly) a new endpoint: update
  /// its endpoint (epoch+1), push the map — and `kernel`, when given —
  /// to it, stream every shard it replicates from a surviving holder
  /// through HANDOFF pull/push pages, then mark it alive (epoch+1) and
  /// broadcast. Intended for quiesced rejoin — concurrent writes
  /// during the copy are not replayed onto the newcomer.
  [[nodiscard]] bool readmit(const Endpoint& node,
                             const core::ScoringKernel* kernel = nullptr,
                             std::size_t* lines_restored = nullptr);

  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
  [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }

 private:
  /// Connected client for a node index, or nullptr (one connect
  /// attempt per call).
  [[nodiscard]] net::Client* client_for(std::size_t idx);
  /// Bounded request: up to attempts_per_replica tries with a
  /// reconnect between them.
  [[nodiscard]] std::optional<net::Frame> request_node(
      std::size_t idx, net::Op op, std::span<const std::uint8_t> payload);
  /// Declare a node dead: rebuild the map (epoch+1) and push it to the
  /// survivors (best effort).
  void mark_dead(std::size_t idx);
  [[nodiscard]] bool replicated_write(dslsim::LineId line, net::Op op,
                                      std::span<const std::uint8_t> payload);
  /// Copy one shard's lines from `from` into `to` via HANDOFF pages.
  [[nodiscard]] bool copy_shard(std::size_t from, std::size_t to,
                                std::uint32_t shard, std::size_t* lines);

  ShardMap map_;
  RouterOptions options_;
  std::vector<net::Client> clients_;  // parallel to map_.nodes
  RouterStats stats_;
  std::string error_;
};

}  // namespace nevermind::cluster
