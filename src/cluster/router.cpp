#include "cluster/router.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace nevermind::cluster {

namespace {

/// MODEL_PUSH payload: u32 length + the "nmkernel" text artefact.
[[nodiscard]] std::vector<std::uint8_t> kernel_payload(
    const core::ScoringKernel& kernel) {
  std::ostringstream os;
  kernel.save(os);
  const std::string text = os.str();
  net::PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(text.size()));
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  return w.take();
}

}  // namespace

ShardRouter::ShardRouter(ShardMap map, RouterOptions options)
    : map_(std::move(map)), options_(options) {
  clients_.reserve(map_.nodes.size());
  for (std::size_t i = 0; i < map_.nodes.size(); ++i) {
    clients_.emplace_back(options_.client_options());
  }
}

net::Client* ShardRouter::client_for(std::size_t idx) {
  if (idx >= clients_.size()) return nullptr;
  net::Client& cl = clients_[idx];
  if (cl.connected()) return &cl;
  if (cl.connect(map_.nodes[idx].host, map_.nodes[idx].port)) return &cl;
  error_ = cl.last_error();
  return nullptr;
}

std::optional<net::Frame> ShardRouter::request_node(
    std::size_t idx, net::Op op, std::span<const std::uint8_t> payload) {
  const std::size_t attempts =
      std::max<std::size_t>(options_.attempts_per_replica, 1);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    net::Client* cl = client_for(idx);
    if (cl == nullptr) {
      ++stats_.retries;
      continue;
    }
    ++stats_.requests;
    auto reply = cl->request(op, payload);
    if (reply.has_value()) return reply;
    error_ = cl->last_error();
    ++stats_.retries;  // request() closed the socket; retry reconnects
  }
  return std::nullopt;
}

void ShardRouter::mark_dead(std::size_t idx) {
  if (idx >= map_.nodes.size() || !map_.nodes[idx].alive) return;
  map_.nodes[idx].alive = false;
  clients_[idx].close();
  ++stats_.nodes_marked_dead;
  std::vector<NodeId> dead;
  for (const Endpoint& node : map_.nodes) {
    if (!node.alive) dead.push_back(node.node);
  }
  map_ = rebuild_shard_map(map_, dead);
  ++stats_.map_rebuilds;
  if (!options_.push_map_on_failover) return;
  // Best effort: the survivors' own failure detectors usually beat us
  // here, and epoch-ordered adoption makes the double push a no-op.
  net::PayloadWriter w;
  write_shard_map(w, map_);
  for (std::size_t i = 0; i < map_.nodes.size(); ++i) {
    if (!map_.nodes[i].alive) continue;
    net::Client* cl = client_for(i);
    if (cl != nullptr && cl->request(net::Op::kShardMap, w.data())) {
      ++stats_.map_pushes;
    }
  }
}

bool ShardRouter::connect_all() {
  bool ok = true;
  for (std::size_t i = 0; i < map_.nodes.size(); ++i) {
    if (map_.nodes[i].alive && client_for(i) == nullptr) ok = false;
  }
  return ok;
}

bool ShardRouter::push_model(const core::ScoringKernel& kernel) {
  const std::vector<std::uint8_t> payload = kernel_payload(kernel);
  bool ok = true;
  for (std::size_t i = 0; i < map_.nodes.size(); ++i) {
    if (!map_.nodes[i].alive) continue;
    const auto reply = request_node(i, net::Op::kModelPush, payload);
    if (!reply.has_value()) {
      ok = false;
      continue;
    }
    net::PayloadReader r(reply->payload);
    (void)r.u64();  // version the node assigned
    if (!r.done()) ok = false;
  }
  return ok;
}

bool ShardRouter::broadcast_map() {
  net::PayloadWriter w;
  write_shard_map(w, map_);
  bool ok = true;
  for (std::size_t i = 0; i < map_.nodes.size(); ++i) {
    if (!map_.nodes[i].alive) continue;
    const auto reply = request_node(i, net::Op::kShardMap, w.data());
    if (!reply.has_value()) {
      ok = false;
      continue;
    }
    ++stats_.map_pushes;
  }
  return ok;
}

bool ShardRouter::replicated_write(dslsim::LineId line, net::Op op,
                                   std::span<const std::uint8_t> payload) {
  net::Backoff backoff(options_.round_backoff_initial,
                       options_.round_backoff_max);
  const std::size_t rounds = std::max<std::size_t>(options_.write_rounds, 1);
  for (std::size_t round = 0; round < rounds; ++round) {
    // Re-derive per round: a mark_dead may have rebuilt the map.
    const std::uint32_t shard = shard_of_line(line, map_.n_shards);
    const std::vector<std::uint16_t> set = map_.replicas[shard];
    std::vector<std::size_t> failed;
    std::size_t successes = 0;
    for (const std::uint16_t idx : set) {
      if (!map_.nodes[idx].alive) continue;
      if (request_node(idx, op, payload).has_value()) {
        ++successes;
      } else {
        failed.push_back(idx);
      }
    }
    if (successes > 0) {
      // The write is durable on >= 1 replica; replicas that missed it
      // are dead to us (their copy is now stale by construction).
      for (const std::size_t idx : failed) mark_dead(idx);
      return true;
    }
    if (round + 1 < rounds) std::this_thread::sleep_for(backoff.next());
  }
  ++stats_.write_failures;
  error_ = "write failed on every replica of the shard";
  return false;
}

bool ShardRouter::ingest(const serve::LineMeasurement& m) {
  net::PayloadWriter w;
  write_measurement(w, m);
  return replicated_write(m.line, net::Op::kIngestMeasurement, w.data());
}

bool ShardRouter::ingest_ticket(dslsim::LineId line, util::Day day) {
  net::PayloadWriter w;
  w.u32(line);
  w.i32(day);
  return replicated_write(line, net::Op::kIngestTicket, w.data());
}

std::optional<serve::ServeScore> ShardRouter::score(dslsim::LineId line) {
  const std::uint32_t shard = shard_of_line(line, map_.n_shards);
  if (shard >= map_.replicas.size()) {
    error_ = "line maps outside the shard table";
    return std::nullopt;
  }
  const std::vector<std::uint16_t> set = map_.replicas[shard];
  bool failed_over = false;
  for (const std::uint16_t idx : set) {
    if (!map_.nodes[idx].alive) continue;
    net::PayloadWriter w;
    w.u32(line);
    const auto reply = request_node(idx, net::Op::kScore, w.data());
    if (!reply.has_value()) {
      mark_dead(idx);
      failed_over = true;
      continue;
    }
    net::PayloadReader r(reply->payload);
    serve::ServeScore s;
    if (!read_score(r, s) || !r.done()) {
      error_ = "bad SCORE reply payload";
      return std::nullopt;
    }
    if (failed_over) ++stats_.failovers;
    return s;
  }
  error_ = "no live replica for the line's shard";
  return std::nullopt;
}

std::optional<std::vector<serve::ServeScore>> ShardRouter::top_n(
    std::uint32_t n) {
  // One extra pass per node: a mid-query death rebuilds the map and
  // the next pass asks the promoted primaries.
  for (std::size_t pass = 0; pass <= map_.nodes.size(); ++pass) {
    std::map<std::size_t, std::vector<std::uint32_t>> by_primary;
    for (std::uint32_t s = 0; s < map_.n_shards; ++s) {
      const auto primary = map_.primary_of(s);
      if (!primary.has_value()) {
        error_ = "shard with no live replica";
        return std::nullopt;
      }
      by_primary[*primary].push_back(s);
    }
    std::vector<serve::ServeScore> merged;
    bool failed = false;
    for (const auto& [idx, shards] : by_primary) {
      TopNShardsRequest req;
      req.n = n;
      req.n_shards = map_.n_shards;
      req.shards = shards;
      net::PayloadWriter w;
      write_top_n_shards(w, req);
      const auto reply = request_node(idx, net::Op::kTopNShards, w.data());
      if (!reply.has_value()) {
        mark_dead(idx);
        ++stats_.failovers;
        failed = true;
        break;
      }
      net::PayloadReader r(reply->payload);
      const std::uint32_t count = r.u32();
      for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        serve::ServeScore s;
        if (!read_score(r, s)) break;
        merged.push_back(s);
      }
      if (!r.done()) {
        error_ = "bad TOPN_SHARDS reply payload";
        return std::nullopt;
      }
    }
    if (failed) continue;
    // Each node ranked its ascending-line-id subset with the service's
    // stable (score desc) sort; lines are unique across subsets, so a
    // total order by (score desc, line asc) reproduces the global
    // stable ranking exactly.
    std::sort(merged.begin(), merged.end(),
              [](const serve::ServeScore& a, const serve::ServeScore& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.line < b.line;
              });
    if (merged.size() > n) merged.resize(n);
    return merged;
  }
  return std::nullopt;
}

std::optional<NodeHealth> ShardRouter::health(NodeId node) {
  const auto idx = map_.index_of(node);
  if (!idx.has_value()) {
    error_ = "unknown node id";
    return std::nullopt;
  }
  const auto reply = request_node(*idx, net::Op::kHealth, {});
  if (!reply.has_value()) return std::nullopt;
  net::PayloadReader r(reply->payload);
  NodeHealth h;
  if (!read_node_health(r, h) || !r.done()) {
    error_ = "bad HEALTH reply payload";
    return std::nullopt;
  }
  return h;
}

bool ShardRouter::copy_shard(std::size_t from, std::size_t to,
                             std::uint32_t shard, std::size_t* lines) {
  std::uint32_t cursor = 0;
  while (true) {
    HandoffRequest pull;
    pull.push = 0;
    pull.shard = shard;
    pull.n_shards = map_.n_shards;
    pull.cursor = cursor;
    pull.max_lines = static_cast<std::uint32_t>(
        std::max<std::size_t>(options_.handoff_page, 1));
    net::PayloadWriter w;
    write_handoff_request(w, pull);
    const auto reply = request_node(from, net::Op::kHandoff, w.data());
    if (!reply.has_value()) {
      error_ = "handoff pull failed: " + error_;
      return false;
    }
    HandoffPage page;
    net::PayloadReader r(reply->payload);
    if (!read_handoff_page(r, page) || !r.done()) {
      error_ = "bad HANDOFF page payload";
      return false;
    }
    if (!page.lines.empty()) {
      HandoffRequest push;
      push.push = 1;
      push.shard = shard;
      push.n_shards = map_.n_shards;
      push.cursor = 0;
      push.max_lines =
          static_cast<std::uint32_t>(page.lines.size());
      net::PayloadWriter pw;
      write_handoff_request(pw, push);
      pw.u32(static_cast<std::uint32_t>(page.lines.size()));
      for (const serve::ExportedLine& e : page.lines) {
        write_exported_line(pw, e);
      }
      const auto ack = request_node(to, net::Op::kHandoff, pw.data());
      if (!ack.has_value()) {
        error_ = "handoff push failed: " + error_;
        return false;
      }
      net::PayloadReader ar(ack->payload);
      const std::uint32_t imported = ar.u32();
      if (!ar.done() || imported != page.lines.size()) {
        error_ = "handoff import count mismatch";
        return false;
      }
      if (lines != nullptr) *lines += page.lines.size();
    }
    if (page.done != 0) return true;
    cursor = page.next_cursor;
  }
}

bool ShardRouter::readmit(const Endpoint& node,
                          const core::ScoringKernel* kernel,
                          std::size_t* lines_restored) {
  const auto idx_opt = map_.index_of(node.node);
  if (!idx_opt.has_value()) {
    error_ = "unknown node id";
    return false;
  }
  const std::size_t idx = *idx_opt;
  if (lines_restored != nullptr) *lines_restored = 0;

  // 1. Epoch+1 with the new endpoint, still marked dead — survivors
  //    learn where the node lives before any traffic can route to it.
  map_.nodes[idx].host = node.host;
  map_.nodes[idx].port = node.port;
  map_.nodes[idx].alive = false;
  map_.epoch += 1;
  clients_[idx].close();
  ++stats_.map_rebuilds;
  (void)broadcast_map();

  // 2. The newcomer needs the topology (and the model) to serve.
  {
    net::PayloadWriter w;
    write_shard_map(w, map_);
    if (!request_node(idx, net::Op::kShardMap, w.data()).has_value()) {
      error_ = "cannot reach readmitted node: " + error_;
      return false;
    }
  }
  if (kernel != nullptr) {
    const std::vector<std::uint8_t> payload = kernel_payload(*kernel);
    if (!request_node(idx, net::Op::kModelPush, payload).has_value()) {
      error_ = "model push to readmitted node failed: " + error_;
      return false;
    }
  }

  // 3. Stream every shard the newcomer replicates from a surviving
  //    holder — exact state, page by page.
  for (std::uint32_t s = 0; s < map_.n_shards; ++s) {
    const auto& set = map_.replicas[s];
    if (std::find(set.begin(), set.end(), static_cast<std::uint16_t>(idx)) ==
        set.end()) {
      continue;
    }
    const auto source = map_.primary_of(s);
    if (!source.has_value()) {
      error_ = "no surviving holder for a shard of the readmitted node";
      return false;
    }
    if (!copy_shard(*source, idx, s, lines_restored)) return false;
  }

  // 4. Alive at epoch+1, pushed everywhere. The minimal-rotation
  //    rebuild keeps current primaries — the newcomer serves as a
  //    backup until the next failover.
  map_.nodes[idx].alive = true;
  std::vector<NodeId> dead;
  for (const Endpoint& n : map_.nodes) {
    if (!n.alive) dead.push_back(n.node);
  }
  map_ = rebuild_shard_map(map_, dead);
  ++stats_.map_rebuilds;
  return broadcast_map();
}

}  // namespace nevermind::cluster
