#include "cluster/node.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "net/client.hpp"

namespace nevermind::cluster {

ClusterNode::ClusterNode(ClusterNodeConfig config)
    : config_(std::move(config)),
      store_(config_.store_shards, config_.window_capacity),
      service_(store_, registry_),
      membership_(config_.membership) {}

ClusterNode::~ClusterNode() {
  if (running()) stop();
}

bool ClusterNode::start(std::string* error) {
  net::ServerConfig sc;
  sc.bind_address = config_.bind_address;
  sc.port = config_.port;
  sc.max_payload = config_.max_payload;
  server_ = std::make_unique<net::Server>(store_, service_, registry_, sc);
  server_->set_op_handler(
      [this](const net::Frame& frame, net::PayloadWriter& out) {
        return handle_op(frame, out);
      });
  if (!server_->start(error)) {
    server_.reset();
    return false;
  }
  port_ = server_->port();
  beacon_stop_ = false;
  server_thread_ = std::thread([this] { server_->run(); });
  beacon_thread_ = std::thread([this] { beacon_loop(); });
  return true;
}

void ClusterNode::stop() {
  {
    const std::lock_guard<std::mutex> lock(beacon_mutex_);
    beacon_stop_ = true;
  }
  beacon_cv_.notify_all();
  if (beacon_thread_.joinable()) beacon_thread_.join();
  if (server_) server_->request_stop();
  if (server_thread_.joinable()) server_thread_.join();
}

void ClusterNode::kill() {
  {
    const std::lock_guard<std::mutex> lock(beacon_mutex_);
    beacon_stop_ = true;
  }
  beacon_cv_.notify_all();
  if (beacon_thread_.joinable()) beacon_thread_.join();
  if (server_) server_->stop_now();
  if (server_thread_.joinable()) server_thread_.join();
  // Destroying the server closes the listener and every connection fd
  // with no drain — peers see the crash, not a shutdown handshake.
  server_.reset();
}

void ClusterNode::request_stop() noexcept {
  if (server_) server_->request_stop();
}

void ClusterNode::wait() {
  if (server_thread_.joinable()) server_thread_.join();
}

ShardMap ClusterNode::map_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_;
}

NodeHealth ClusterNode::health_snapshot() const {
  NodeHealth h;
  h.node = config_.node_id;
  h.model_version = registry_.current_version();
  h.n_lines = store_.n_lines();
  h.measurements = store_.measurements_ingested();
  h.tickets = store_.tickets_ingested();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    h.map_epoch = map_.epoch;
    h.peers = membership_.snapshot();
  }
  return h;
}

net::OpOutcome ClusterNode::handle_op(const net::Frame& frame,
                                      net::PayloadWriter& out) {
  switch (frame.op) {
    case net::Op::kModelPush:
      return handle_model_push(frame, out);
    case net::Op::kShardMap:
      return handle_shard_map(frame, out);
    case net::Op::kHeartbeat: {
      Heartbeat hb;
      net::PayloadReader r(frame.payload);
      if (!read_heartbeat(r, hb) || !r.done()) {
        return net::OpOutcome::kBadPayload;
      }
      Heartbeat echo;
      echo.from = config_.node_id;
      echo.seq = hb.seq;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        membership_.record_heartbeat(hb.from, Clock::now());
        echo.map_epoch = map_.epoch;
      }
      write_heartbeat(out, echo);
      return net::OpOutcome::kReply;
    }
    case net::Op::kHealth: {
      if (!frame.payload.empty()) return net::OpOutcome::kBadPayload;
      write_node_health(out, health_snapshot());
      return net::OpOutcome::kReply;
    }
    case net::Op::kHandoff:
      return handle_handoff(frame, out);
    case net::Op::kTopNShards:
      return handle_top_n_shards(frame, out);
    default:
      return net::OpOutcome::kUnhandled;
  }
}

net::OpOutcome ClusterNode::handle_model_push(const net::Frame& frame,
                                              net::PayloadWriter& out) {
  net::PayloadReader r(frame.payload);
  const std::uint32_t len = r.u32();
  if (!r.ok() || r.remaining() != len) return net::OpOutcome::kBadPayload;
  std::istringstream is(std::string(
      reinterpret_cast<const char*>(frame.payload.data()) + 4, len));
  auto kernel = core::ScoringKernel::load(is);
  if (!kernel.has_value()) return net::OpOutcome::kBadPayload;
  out.u64(registry_.publish(std::move(*kernel)));
  return net::OpOutcome::kReply;
}

net::OpOutcome ClusterNode::handle_shard_map(const net::Frame& frame,
                                             net::PayloadWriter& out) {
  ShardMap pushed;
  net::PayloadReader r(frame.payload);
  if (!read_shard_map(r, pushed) || !r.done()) {
    return net::OpOutcome::kBadPayload;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Epoch-ordered adoption: strictly newer wins, everything else is a
  // no-op and the reply tells the pusher what epoch we hold.
  if (pushed.epoch > map_.epoch) {
    map_ = std::move(pushed);
    sync_peers_locked(Clock::now());
  }
  out.u64(map_.epoch);
  return net::OpOutcome::kReply;
}

net::OpOutcome ClusterNode::handle_handoff(const net::Frame& frame,
                                           net::PayloadWriter& out) {
  HandoffRequest req;
  net::PayloadReader r(frame.payload);
  if (!read_handoff_request(r, req) || req.n_shards == 0 ||
      req.shard >= req.n_shards || req.max_lines == 0) {
    return net::OpOutcome::kBadPayload;
  }
  if (req.push != 0) {
    // Push mode: the payload continues with a count-prefixed page of
    // exported lines to install verbatim.
    const std::uint32_t count = r.u32();
    std::uint32_t imported = 0;
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      serve::ExportedLine e;
      if (!read_exported_line(r, e)) break;
      store_.import_line(e);
      ++imported;
    }
    if (!r.done() || imported != count) return net::OpOutcome::kBadPayload;
    out.u32(imported);
    return net::OpOutcome::kReply;
  }
  if (!r.done()) return net::OpOutcome::kBadPayload;
  // Pull mode: a page of this node's lines for the shard, ascending,
  // starting at the cursor.
  const std::vector<dslsim::LineId> lines =
      lines_of_shard(req.shard, req.n_shards);
  HandoffPage page;
  const std::size_t begin =
      std::min<std::size_t>(req.cursor, lines.size());
  const std::size_t end =
      std::min<std::size_t>(begin + req.max_lines, lines.size());
  page.lines.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    auto e = store_.export_line(lines[i]);
    if (e.has_value()) page.lines.push_back(std::move(*e));
  }
  page.next_cursor = static_cast<std::uint32_t>(end);
  page.done = end >= lines.size() ? 1 : 0;
  write_handoff_page(out, page);
  return net::OpOutcome::kReply;
}

net::OpOutcome ClusterNode::handle_top_n_shards(const net::Frame& frame,
                                                net::PayloadWriter& out) {
  TopNShardsRequest req;
  net::PayloadReader r(frame.payload);
  if (!read_top_n_shards(r, req) || !r.done() || req.n_shards == 0) {
    return net::OpOutcome::kBadPayload;
  }
  std::vector<bool> wanted(req.n_shards, false);
  for (const std::uint32_t s : req.shards) {
    if (s >= req.n_shards) return net::OpOutcome::kBadPayload;
    wanted[s] = true;
  }
  // line_ids() is ascending, the filter preserves that — the subset
  // ranking merges back into the exact global ranking on the router.
  std::vector<dslsim::LineId> lines = store_.line_ids();
  lines.erase(std::remove_if(lines.begin(), lines.end(),
                             [&](dslsim::LineId line) {
                               return !wanted[shard_of_line(line,
                                                            req.n_shards)];
                             }),
              lines.end());
  const std::vector<serve::ServeScore> ranked =
      service_.top_n_of(req.n, lines);
  out.u32(static_cast<std::uint32_t>(ranked.size()));
  for (const serve::ServeScore& s : ranked) write_score(out, s);
  return net::OpOutcome::kReply;
}

std::vector<dslsim::LineId> ClusterNode::lines_of_shard(
    std::uint32_t shard, std::uint32_t n_shards) const {
  std::vector<dslsim::LineId> lines = store_.line_ids();
  lines.erase(std::remove_if(lines.begin(), lines.end(),
                             [&](dslsim::LineId line) {
                               return shard_of_line(line, n_shards) != shard;
                             }),
              lines.end());
  return lines;
}

void ClusterNode::sync_peers_locked(Clock::time_point now) {
  for (const Endpoint& node : map_.nodes) {
    if (node.node == config_.node_id) continue;
    membership_.add_peer(node.node, now, node.alive);
  }
}

void ClusterNode::rebuild_map_locked() {
  if (map_.epoch == 0) return;  // no map yet
  // Only rebuild when the detector's view actually contradicts the
  // map's alive flags — an adopted map that already records a death
  // must not trigger a spurious epoch bump.
  const std::vector<NodeId> dead = membership_.dead_peers();
  bool stale = false;
  for (const Endpoint& node : map_.nodes) {
    if (node.node == config_.node_id) continue;
    const bool alive =
        std::find(dead.begin(), dead.end(), node.node) == dead.end();
    if (node.alive != alive) {
      stale = true;
      break;
    }
  }
  if (stale) map_ = rebuild_shard_map(map_, dead);
}

void ClusterNode::beacon_loop() {
  struct PeerLink {
    net::Client client;
    net::Backoff backoff{std::chrono::milliseconds(25),
                         std::chrono::milliseconds(400)};
    Clock::time_point next_attempt{};
    std::string host;
    std::uint16_t port = 0;
    explicit PeerLink(const net::ClientOptions& options) : client(options) {}
  };
  net::ClientOptions options;
  options.connect_timeout = config_.peer_connect_timeout;
  options.request_timeout = config_.peer_request_timeout;
  std::map<NodeId, PeerLink> links;
  std::uint64_t seq = 0;

  while (true) {
    {
      std::unique_lock<std::mutex> lock(beacon_mutex_);
      beacon_cv_.wait_for(lock, config_.heartbeat_interval,
                          [this] { return beacon_stop_; });
      if (beacon_stop_) return;
    }
    // Snapshot the peer set under the node mutex; network I/O happens
    // outside it.
    std::vector<Endpoint> peers;
    std::uint64_t epoch = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      epoch = map_.epoch;
      for (const Endpoint& node : map_.nodes) {
        if (node.node != config_.node_id) peers.push_back(node);
      }
    }
    for (const Endpoint& peer : peers) {
      auto [it, inserted] = links.try_emplace(peer.node, options);
      PeerLink& link = it->second;
      if (link.host != peer.host || link.port != peer.port) {
        // Endpoint moved (a rejoin at a new port): drop the old link.
        link.client.close();
        link.host = peer.host;
        link.port = peer.port;
        link.backoff.reset();
        link.next_attempt = {};
      }
      const auto now = Clock::now();
      if (!link.client.connected()) {
        if (now < link.next_attempt) continue;
        if (!link.client.connect(peer.host, peer.port)) {
          link.next_attempt = now + link.backoff.next();
          continue;
        }
        link.backoff.reset();
      }
      Heartbeat hb;
      hb.from = config_.node_id;
      hb.map_epoch = epoch;
      hb.seq = ++seq;
      net::PayloadWriter w;
      write_heartbeat(w, hb);
      const auto reply = link.client.request(net::Op::kHeartbeat, w.data());
      if (!reply.has_value()) {
        // request() closed the connection; the backoff paces retries.
        link.next_attempt = Clock::now() + link.backoff.next();
        continue;
      }
      Heartbeat echo;
      net::PayloadReader r(reply->payload);
      if (read_heartbeat(r, echo) && r.done()) {
        const std::lock_guard<std::mutex> lock(mutex_);
        membership_.record_heartbeat(echo.from, Clock::now());
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      membership_.tick(Clock::now());
      // Suspect is not a routing event; rebuild_map_locked() bumps the
      // epoch only when the dead set contradicts the map.
      rebuild_map_locked();
    }
  }
}

}  // namespace nevermind::cluster
