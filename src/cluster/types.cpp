#include "cluster/types.hpp"

#include <algorithm>

namespace nevermind::cluster {

namespace {

/// splitmix64 finalizer — same construction the store uses internally:
/// line ids are dense sequential integers, so a plain modulo would put
/// contiguous ranges on one shard; the mix spreads neighbours
/// uniformly. Deliberately independent of LineStateStore's internal
/// shard count: cluster shards are a routing concept.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Cap for count-prefixed reserves so a garbage count cannot force a
/// huge allocation before the bounds-checked reads catch it.
constexpr std::size_t kReserveCap = 4096;

}  // namespace

std::uint32_t shard_of_line(dslsim::LineId line,
                            std::uint32_t n_shards) noexcept {
  if (n_shards == 0) return 0;
  return static_cast<std::uint32_t>(mix64(line) % n_shards);
}

bool ShardMap::valid() const noexcept {
  if (n_shards == 0 || replication == 0 || nodes.empty()) return false;
  if (replicas.size() != n_shards) return false;
  if (nodes.size() > 0xFFFF) return false;
  for (const auto& set : replicas) {
    if (set.empty() || set.size() > nodes.size()) return false;
    for (const std::uint16_t idx : set) {
      if (idx >= nodes.size()) return false;
    }
  }
  return true;
}

std::optional<std::size_t> ShardMap::index_of(NodeId node) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].node == node) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> ShardMap::primary_of(std::uint32_t shard) const {
  if (shard >= replicas.size()) return std::nullopt;
  for (const std::uint16_t idx : replicas[shard]) {
    if (nodes[idx].alive) return idx;
  }
  return std::nullopt;
}

ShardMap make_shard_map(std::vector<Endpoint> nodes, std::uint32_t n_shards,
                        std::uint32_t replication) {
  ShardMap map;
  map.epoch = 1;
  map.n_shards = n_shards;
  map.replication = std::min<std::uint32_t>(
      std::max<std::uint32_t>(replication, 1),
      static_cast<std::uint32_t>(nodes.size()));
  map.nodes = std::move(nodes);
  map.replicas.resize(n_shards);
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    map.replicas[s].reserve(map.replication);
    for (std::uint32_t r = 0; r < map.replication; ++r) {
      map.replicas[s].push_back(
          static_cast<std::uint16_t>((s + r) % map.nodes.size()));
    }
  }
  return map;
}

ShardMap rebuild_shard_map(const ShardMap& base,
                           const std::vector<NodeId>& dead) {
  ShardMap next = base;
  next.epoch = base.epoch + 1;
  for (Endpoint& node : next.nodes) {
    node.alive =
        std::find(dead.begin(), dead.end(), node.node) == dead.end();
  }
  for (auto& set : next.replicas) {
    // Minimal rotation: move the first alive replica to the front,
    // everything else keeps its relative order. A shard whose whole
    // replica set is dead keeps its order (primary_of reports nullopt).
    const auto alive_it =
        std::find_if(set.begin(), set.end(), [&](std::uint16_t idx) {
          return next.nodes[idx].alive;
        });
    if (alive_it != set.end() && alive_it != set.begin()) {
      std::rotate(set.begin(), alive_it, alive_it + 1);
    }
  }
  return next;
}

void write_shard_map(net::PayloadWriter& w, const ShardMap& map) {
  w.u64(map.epoch);
  w.u32(map.n_shards);
  w.u32(map.replication);
  w.u16(static_cast<std::uint16_t>(map.nodes.size()));
  for (const Endpoint& node : map.nodes) {
    w.u32(node.node);
    w.u16(node.port);
    w.u8(node.alive ? 1 : 0);
    w.u16(static_cast<std::uint16_t>(node.host.size()));
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(node.host.data()),
        node.host.size()));
  }
  for (const auto& set : map.replicas) {
    w.u8(static_cast<std::uint8_t>(set.size()));
    for (const std::uint16_t idx : set) w.u16(idx);
  }
}

bool read_shard_map(net::PayloadReader& r, ShardMap& map) {
  map = ShardMap{};
  map.epoch = r.u64();
  map.n_shards = r.u32();
  map.replication = r.u32();
  const std::uint16_t n_nodes = r.u16();
  map.nodes.reserve(std::min<std::size_t>(n_nodes, kReserveCap));
  for (std::uint16_t i = 0; i < n_nodes && r.ok(); ++i) {
    Endpoint node;
    node.node = r.u32();
    node.port = r.u16();
    node.alive = r.u8() != 0;
    const std::uint16_t host_len = r.u16();
    if (!r.ok() || r.remaining() < host_len) return false;
    node.host.resize(host_len);
    for (std::uint16_t b = 0; b < host_len; ++b) {
      node.host[b] = static_cast<char>(r.u8());
    }
    map.nodes.push_back(std::move(node));
  }
  if (!r.ok() || map.n_shards > net::kDefaultMaxPayload) return false;
  map.replicas.reserve(std::min<std::size_t>(map.n_shards, kReserveCap));
  for (std::uint32_t s = 0; s < map.n_shards && r.ok(); ++s) {
    const std::uint8_t count = r.u8();
    std::vector<std::uint16_t> set;
    set.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) set.push_back(r.u16());
    map.replicas.push_back(std::move(set));
  }
  return r.ok() && map.valid();
}

void write_heartbeat(net::PayloadWriter& w, const Heartbeat& hb) {
  w.u32(hb.from);
  w.u64(hb.map_epoch);
  w.u64(hb.seq);
}

bool read_heartbeat(net::PayloadReader& r, Heartbeat& hb) {
  hb.from = r.u32();
  hb.map_epoch = r.u64();
  hb.seq = r.u64();
  return r.ok();
}

const char* peer_state_name(PeerState s) noexcept {
  switch (s) {
    case PeerState::kUp:
      return "up";
    case PeerState::kSuspect:
      return "suspect";
    case PeerState::kDead:
      return "dead";
  }
  return "unknown";
}

void write_node_health(net::PayloadWriter& w, const NodeHealth& h) {
  w.u32(h.node);
  w.u64(h.map_epoch);
  w.u64(h.model_version);
  w.u64(h.n_lines);
  w.u64(h.measurements);
  w.u64(h.tickets);
  w.u16(static_cast<std::uint16_t>(h.peers.size()));
  for (const PeerHealth& p : h.peers) {
    w.u32(p.node);
    w.u8(static_cast<std::uint8_t>(p.state));
  }
}

bool read_node_health(net::PayloadReader& r, NodeHealth& h) {
  h = NodeHealth{};
  h.node = r.u32();
  h.map_epoch = r.u64();
  h.model_version = r.u64();
  h.n_lines = r.u64();
  h.measurements = r.u64();
  h.tickets = r.u64();
  const std::uint16_t n_peers = r.u16();
  h.peers.reserve(std::min<std::size_t>(n_peers, kReserveCap));
  for (std::uint16_t i = 0; i < n_peers && r.ok(); ++i) {
    PeerHealth p;
    p.node = r.u32();
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(PeerState::kDead)) return false;
    p.state = static_cast<PeerState>(state);
    h.peers.push_back(p);
  }
  return r.ok();
}

void write_handoff_request(net::PayloadWriter& w, const HandoffRequest& req) {
  w.u8(req.push);
  w.u32(req.shard);
  w.u32(req.n_shards);
  w.u32(req.cursor);
  w.u32(req.max_lines);
}

bool read_handoff_request(net::PayloadReader& r, HandoffRequest& req) {
  req.push = r.u8();
  req.shard = r.u32();
  req.n_shards = r.u32();
  req.cursor = r.u32();
  req.max_lines = r.u32();
  return r.ok() && req.push <= 1;
}

void write_exported_line(net::PayloadWriter& w, const serve::ExportedLine& e) {
  w.u32(e.line);
  w.i32(e.week);
  w.u8(e.profile);
  w.u8(e.has_ticket ? 1 : 0);
  w.i32(e.last_ticket);
  w.u8(e.window.has_prev ? 1 : 0);
  w.u32(e.window.tests_seen);
  w.u32(e.window.tests_off);
  for (const float v : e.window.prev) w.f32(v);
  for (const float v : e.current) w.f32(v);
  // Welford accumulators travel as their raw fields — restore() on the
  // far side reproduces each one bit for bit.
  for (const util::RunningStats& s : e.window.history) {
    w.u64(s.count());
    w.f64(s.raw_mean());
    w.f64(s.sum_sq_dev());
    w.f64(s.raw_min());
    w.f64(s.raw_max());
  }
  w.u16(static_cast<std::uint16_t>(e.ring.size()));
  for (const auto& [week, metrics] : e.ring) {
    w.i32(week);
    for (const float v : metrics) w.f32(v);
  }
}

bool read_exported_line(net::PayloadReader& r, serve::ExportedLine& e) {
  e = serve::ExportedLine{};
  e.line = r.u32();
  e.week = r.i32();
  e.profile = r.u8();
  e.has_ticket = r.u8() != 0;
  e.last_ticket = r.i32();
  e.window.has_prev = r.u8() != 0;
  e.window.tests_seen = r.u32();
  e.window.tests_off = r.u32();
  for (float& v : e.window.prev) v = r.f32();
  for (float& v : e.current) v = r.f32();
  for (util::RunningStats& s : e.window.history) {
    const std::uint64_t n = r.u64();
    const double mean = r.f64();
    const double m2 = r.f64();
    const double min = r.f64();
    const double max = r.f64();
    s = util::RunningStats::restore(static_cast<std::size_t>(n), mean, m2,
                                    min, max);
  }
  const std::uint16_t ring_count = r.u16();
  e.ring.reserve(std::min<std::size_t>(ring_count, kReserveCap));
  for (std::uint16_t i = 0; i < ring_count && r.ok(); ++i) {
    std::pair<int, dslsim::MetricVector> entry;
    entry.first = r.i32();
    for (float& v : entry.second) v = r.f32();
    e.ring.push_back(entry);
  }
  return r.ok();
}

void write_handoff_page(net::PayloadWriter& w, const HandoffPage& page) {
  w.u32(page.next_cursor);
  w.u8(page.done);
  w.u32(static_cast<std::uint32_t>(page.lines.size()));
  for (const serve::ExportedLine& e : page.lines) write_exported_line(w, e);
}

bool read_handoff_page(net::PayloadReader& r, HandoffPage& page) {
  page = HandoffPage{};
  page.next_cursor = r.u32();
  page.done = r.u8();
  const std::uint32_t count = r.u32();
  page.lines.reserve(std::min<std::size_t>(count, kReserveCap));
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    serve::ExportedLine e;
    if (!read_exported_line(r, e)) return false;
    page.lines.push_back(std::move(e));
  }
  return r.ok() && page.lines.size() == count && page.done <= 1;
}

void write_top_n_shards(net::PayloadWriter& w, const TopNShardsRequest& req) {
  w.u32(req.n);
  w.u32(req.n_shards);
  w.u16(static_cast<std::uint16_t>(req.shards.size()));
  for (const std::uint32_t s : req.shards) w.u32(s);
}

bool read_top_n_shards(net::PayloadReader& r, TopNShardsRequest& req) {
  req = TopNShardsRequest{};
  req.n = r.u32();
  req.n_shards = r.u32();
  const std::uint16_t count = r.u16();
  req.shards.reserve(std::min<std::size_t>(count, kReserveCap));
  for (std::uint16_t i = 0; i < count; ++i) req.shards.push_back(r.u32());
  return r.ok();
}

}  // namespace nevermind::cluster
