// Fig-9 style explanations of a combined-model inference.
//
// The paper illustrates (Fig 9) how the combined model's verdict for
// "inside wiring at the home network" decomposes: bottom nodes are
// partitions of line-feature values, arrows carry the weak learners'
// S+/S- scores into the two intermediate classifiers f_Cij and f_Ci.,
// and the top node is the stacked posterior. This module extracts that
// structure from trained models so operators (and the
// dispatch_assistant example) can see *why* a location was ranked
// first, not just that it was.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/adaboost.hpp"
#include "ml/dataset.hpp"

namespace nevermind::core {

/// One weak learner's contribution to an ensemble's score for a
/// specific feature vector.
struct StumpContribution {
  std::size_t feature = 0;
  std::string feature_name;
  /// Human-readable test, e.g. "d.upbr >= -112" or "bt == 1".
  std::string condition;
  /// Whether this example satisfied the condition (false also covers
  /// the missing-value abstain branch).
  bool passed = false;
  bool missing = false;
  /// The score the stump emitted for this example (an S+ or S-).
  double score = 0.0;
};

/// Explanation of one BStump ensemble's score: the per-feature
/// aggregate contributions, largest magnitude first.
struct EnsembleExplanation {
  double total_score = 0.0;
  /// Aggregated per feature (several stumps may test one feature).
  std::vector<StumpContribution> contributions;
};

/// Decompose `model`'s score on `features`. Contributions from stumps
/// testing the same feature are merged; the list is sorted by absolute
/// contribution. `columns` supplies names (may be shorter than the
/// feature space; missing names render as "f<i>").
[[nodiscard]] EnsembleExplanation explain_score(
    const ml::BStumpModel& model, std::span<const float> features,
    std::span<const ml::ColumnInfo> columns, std::size_t top_k = 8);

/// Pretty-print an explanation as an indented list.
void print_explanation(std::ostream& os, const EnsembleExplanation& exp,
                       std::size_t top_k = 8);

}  // namespace nevermind::core
