#include "core/monitoring.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::core {

namespace {

constexpr double kFloor = 1e-4;  // keeps the PSI log finite on empty bins

/// Interior equal-frequency edges from a sorted present-value sample.
std::vector<float> quantile_edges(std::vector<float>& sorted,
                                  std::size_t bins) {
  std::vector<float> edges;
  if (sorted.empty() || bins < 2) return edges;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t b = 1; b < bins; ++b) {
    const std::size_t idx =
        std::min(sorted.size() - 1, b * sorted.size() / bins);
    const float edge = sorted[idx];
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  return edges;
}

std::vector<double> bin_fractions(const ml::ColumnView& values,
                                  std::span<const float> edges) {
  // edges.size()+1 value bins, +1 trailing missing bin.
  std::vector<double> counts(edges.size() + 2, 0.0);
  for (float v : values) {
    if (ml::is_missing(v)) {
      counts.back() += 1.0;
      continue;
    }
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    counts[static_cast<std::size_t>(it - edges.begin())] += 1.0;
  }
  const double total = std::max<double>(static_cast<double>(values.size()), 1.0);
  for (auto& c : counts) c /= total;
  return counts;
}

double psi_between(std::span<const double> expected,
                   std::span<const double> actual) {
  double psi = 0.0;
  for (std::size_t b = 0; b < expected.size() && b < actual.size(); ++b) {
    const double e = std::max(expected[b], kFloor);
    const double a = std::max(actual[b], kFloor);
    psi += (a - e) * std::log(a / e);
  }
  return psi;
}

}  // namespace

double population_stability_index(std::span<const float> reference,
                                  std::span<const float> current,
                                  std::size_t bins) {
  std::vector<float> present;
  present.reserve(reference.size());
  for (float v : reference) {
    if (!ml::is_missing(v)) present.push_back(v);
  }
  const auto edges = quantile_edges(present, bins);
  const auto expected = bin_fractions(reference, edges);
  const auto actual = bin_fractions(current, edges);
  return psi_between(expected, actual);
}

void DriftMonitor::fit(const ml::DatasetView& reference,
                       std::size_t bins) {
  columns_.clear();
  columns_.reserve(reference.n_cols());
  for (std::size_t j = 0; j < reference.n_cols(); ++j) {
    ColumnReference ref;
    ref.name = reference.column_info(j).name;
    std::vector<float> present;
    for (float v : reference.column(j)) {
      if (!ml::is_missing(v)) present.push_back(v);
    }
    ref.edges = quantile_edges(present, bins);
    ref.expected = bin_fractions(reference.column(j), ref.edges);
    columns_.push_back(std::move(ref));
  }
}

std::vector<double> DriftMonitor::occupancy(const ColumnReference& ref,
                                            const ml::ColumnView& values) {
  return bin_fractions(values, ref.edges);
}

std::vector<double> DriftMonitor::column_psi(
    const ml::DatasetView& current) const {
  std::vector<double> out;
  out.reserve(columns_.size());
  for (std::size_t j = 0; j < columns_.size() && j < current.n_cols(); ++j) {
    const auto actual = occupancy(columns_[j], current.column(j));
    out.push_back(psi_between(columns_[j].expected, actual));
  }
  return out;
}

std::vector<DriftMonitor::Alert> DriftMonitor::alerts(
    const ml::DatasetView& current, double threshold) const {
  const auto psi = column_psi(current);
  std::vector<Alert> out;
  for (std::size_t j = 0; j < psi.size(); ++j) {
    if (psi[j] > threshold) out.push_back({j, columns_[j].name, psi[j]});
  }
  std::sort(out.begin(), out.end(),
            [](const Alert& a, const Alert& b) { return a.psi > b.psi; });
  return out;
}

}  // namespace nevermind::core
