#include "core/explain.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "util/table.hpp"

namespace nevermind::core {

namespace {

std::string feature_name_of(std::span<const ml::ColumnInfo> columns,
                            std::size_t feature) {
  if (feature < columns.size()) return columns[feature].name;
  return "f" + std::to_string(feature);
}

std::string condition_of(const ml::Stump& stump,
                         std::span<const ml::ColumnInfo> columns) {
  const std::string name = feature_name_of(columns, stump.feature);
  const char* op = stump.categorical ? " == " : " >= ";
  return name + op + util::fmt_double(stump.threshold, 2);
}

}  // namespace

EnsembleExplanation explain_score(const ml::BStumpModel& model,
                                  std::span<const float> features,
                                  std::span<const ml::ColumnInfo> columns,
                                  std::size_t top_k) {
  EnsembleExplanation out;

  // Merge stump votes per feature; keep the strongest single stump's
  // condition as the representative test.
  struct Accum {
    StumpContribution repr;
    double total = 0.0;
    double strongest = -1.0;
  };
  std::map<std::size_t, Accum> by_feature;

  for (const auto& stump : model.stumps()) {
    const float v = features[stump.feature];
    const double s = stump.evaluate(v);
    out.total_score += s;

    auto& acc = by_feature[stump.feature];
    acc.total += s;
    const double magnitude = std::fabs(s);
    if (magnitude > acc.strongest) {
      acc.strongest = magnitude;
      acc.repr.feature = stump.feature;
      acc.repr.feature_name = feature_name_of(columns, stump.feature);
      acc.repr.condition = condition_of(stump, columns);
      acc.repr.missing = ml::is_missing(v);
      acc.repr.passed =
          !acc.repr.missing &&
          (stump.categorical ? v == stump.threshold : v >= stump.threshold);
    }
  }

  out.contributions.reserve(by_feature.size());
  for (auto& [feature, acc] : by_feature) {
    acc.repr.score = acc.total;
    out.contributions.push_back(std::move(acc.repr));
  }
  std::sort(out.contributions.begin(), out.contributions.end(),
            [](const StumpContribution& a, const StumpContribution& b) {
              return std::fabs(a.score) > std::fabs(b.score);
            });
  if (out.contributions.size() > top_k) out.contributions.resize(top_k);
  return out;
}

void print_explanation(std::ostream& os, const EnsembleExplanation& exp,
                       std::size_t top_k) {
  os << "score " << util::fmt_double(exp.total_score, 3)
     << " — strongest feature votes:\n";
  for (std::size_t i = 0; i < exp.contributions.size() && i < top_k; ++i) {
    const auto& c = exp.contributions[i];
    os << "  " << (c.score >= 0 ? "+" : "") << util::fmt_double(c.score, 3)
       << "  " << c.condition << "  ["
       << (c.missing ? "missing" : (c.passed ? "true" : "false")) << "]\n";
  }
}

}  // namespace nevermind::core
