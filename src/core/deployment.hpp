// Rolling operational deployment — the paper's conclusion says "We are
// currently focusing on trialing an operational deployment in a large
// DSL network"; this is that loop, runnable end-to-end: every Saturday
// predict, submit the top-N to ATDS, dispatch with the locator, and
// periodically retrain on a trailing window. A DriftMonitor watches the
// selected features' distributions so operators see *why* retraining is
// (or is not yet) needed.
#pragma once

#include <vector>

#include "core/atds.hpp"
#include "core/retrain.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"

namespace nevermind::core {

struct DeploymentConfig {
  PredictorConfig predictor;
  LocatorConfig locator;
  AtdsConfig atds;
  /// Trailing measurement weeks each (re)training uses.
  int training_window_weeks = 9;
  /// Calendar retrain cadence; 0 trains once before the first week and
  /// never again (the bench_ablation_drift regime).
  int retrain_every_weeks = 0;
  /// PSI above which a feature counts as drifted in the weekly report.
  double psi_alert_threshold = 0.25;
  /// Drift-triggered retraining, composing with (or replacing) the
  /// calendar cadence: retrain when at least `drift_min_alerts`
  /// selected-feature columns alert for `drift_patience_weeks`
  /// consecutive weeks, no sooner than `drift_cooldown_weeks` after the
  /// previous training. 0 alerts keeps the calendar-only behaviour.
  std::size_t drift_min_alerts = 0;
  int drift_patience_weeks = 1;
  int drift_cooldown_weeks = 2;

  [[nodiscard]] RetrainPolicy retrain_policy() const {
    RetrainPolicy policy;
    policy.training_window_weeks = training_window_weeks;
    policy.retrain_every_weeks = retrain_every_weeks;
    policy.psi_alert_threshold = psi_alert_threshold;
    policy.drift_min_alerts = drift_min_alerts;
    policy.drift_patience_weeks = drift_patience_weeks;
    policy.drift_cooldown_weeks = drift_cooldown_weeks;
    return policy;
  }
};

struct DeploymentWeekReport {
  int week = 0;
  bool retrained = false;
  /// What caused the retrain (kNone when retrained is false).
  RetrainTrigger trigger = RetrainTrigger::kNone;
  AtdsWeekReport atds;
  /// Precision of the submitted batch (would-ticket / submitted).
  double precision = 0.0;
  /// Selected-feature columns whose PSI exceeded the alert threshold.
  std::size_t drift_alerts = 0;
  double max_psi = 0.0;
};

class RollingDeployment {
 public:
  explicit RollingDeployment(DeploymentConfig config);

  /// Run the proactive loop over measurement weeks [first, last]
  /// (inclusive). Initial training happens on the window ending the
  /// week before `first`. Retraining decisions (calendar and drift)
  /// are delegated to a RetrainOrchestrator; the locator retrains on
  /// the same windows alongside the predictor.
  [[nodiscard]] std::vector<DeploymentWeekReport> run(
      const dslsim::SimDataset& data, int first_week, int last_week);

  [[nodiscard]] const TicketPredictor& predictor() const {
    return orchestrator_.predictor();
  }
  [[nodiscard]] const TroubleLocator& locator() const { return locator_; }
  [[nodiscard]] const RetrainOrchestrator& orchestrator() const {
    return orchestrator_;
  }

 private:
  void train_locator_at(const dslsim::SimDataset& data, int week_before);

  DeploymentConfig config_;
  RetrainOrchestrator orchestrator_;
  TroubleLocator locator_;
};

}  // namespace nevermind::core
