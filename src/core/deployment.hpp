// Rolling operational deployment — the paper's conclusion says "We are
// currently focusing on trialing an operational deployment in a large
// DSL network"; this is that loop, runnable end-to-end: every Saturday
// predict, submit the top-N to ATDS, dispatch with the locator, and
// periodically retrain on a trailing window. A DriftMonitor watches the
// selected features' distributions so operators see *why* retraining is
// (or is not yet) needed.
#pragma once

#include <vector>

#include "core/atds.hpp"
#include "core/monitoring.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"

namespace nevermind::core {

struct DeploymentConfig {
  PredictorConfig predictor;
  LocatorConfig locator;
  AtdsConfig atds;
  /// Trailing measurement weeks each (re)training uses.
  int training_window_weeks = 9;
  /// Retrain cadence; 0 trains once before the first week and never
  /// again (the bench_ablation_drift regime).
  int retrain_every_weeks = 0;
  /// PSI above which a feature counts as drifted in the weekly report.
  double psi_alert_threshold = 0.25;
};

struct DeploymentWeekReport {
  int week = 0;
  bool retrained = false;
  AtdsWeekReport atds;
  /// Precision of the submitted batch (would-ticket / submitted).
  double precision = 0.0;
  /// Selected-feature columns whose PSI exceeded the alert threshold.
  std::size_t drift_alerts = 0;
  double max_psi = 0.0;
};

class RollingDeployment {
 public:
  explicit RollingDeployment(DeploymentConfig config);

  /// Run the proactive loop over measurement weeks [first, last]
  /// (inclusive). Initial training happens on the window ending the
  /// week before `first`.
  [[nodiscard]] std::vector<DeploymentWeekReport> run(
      const dslsim::SimDataset& data, int first_week, int last_week);

  [[nodiscard]] const TicketPredictor& predictor() const { return predictor_; }
  [[nodiscard]] const TroubleLocator& locator() const { return locator_; }

 private:
  void train_at(const dslsim::SimDataset& data, int week_before);

  DeploymentConfig config_;
  TicketPredictor predictor_;
  TroubleLocator locator_;
  DriftMonitor drift_;
};

}  // namespace nevermind::core
