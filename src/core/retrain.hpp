// The closed retraining loop the paper's deployment plan (§8) never
// got to build: DriftMonitor PSI alerts on the live feature stream —
// not just a calendar cadence — decide when the predictor retrains on
// a trailing window, and the fresh ScoringKernel is handed to a
// publish hook so the serving layer can hot-swap it into the
// ModelRegistry mid-stream. RollingDeployment runs its weekly loop on
// top of this orchestrator; bench_drift measures the detection lag and
// AUC recovery it buys under simulated concept drift.
#pragma once

#include <cstddef>
#include <functional>

#include "core/monitoring.hpp"
#include "core/ticket_predictor.hpp"

namespace nevermind::core {

struct RetrainPolicy {
  /// Trailing measurement weeks each (re)training uses.
  int training_window_weeks = 9;
  /// Calendar trigger: retrain every N weeks (0 = calendar off).
  int retrain_every_weeks = 0;
  /// PSI above which one selected-feature column counts as drifted.
  double psi_alert_threshold = 0.25;
  /// Drift trigger: retrain when at least this many columns alert
  /// (0 = drift trigger off; the monitor still reports).
  std::size_t drift_min_alerts = 0;
  /// ...for this many consecutive weeks (debounces one noisy Saturday).
  int drift_patience_weeks = 1;
  /// Minimum weeks between a training and a drift-triggered retrain —
  /// a fresh model needs time before its reference can be "drifted".
  /// Does not gate the calendar trigger.
  int drift_cooldown_weeks = 2;
};

enum class RetrainTrigger : std::uint8_t { kNone = 0, kCalendar, kDrift };
[[nodiscard]] const char* retrain_trigger_name(RetrainTrigger t) noexcept;

/// What observe_week decided and measured.
struct RetrainDecision {
  int week = 0;
  RetrainTrigger trigger = RetrainTrigger::kNone;
  bool retrained = false;
  /// Selected-feature columns whose PSI exceeded the alert threshold
  /// this week (measured after any retrain, against the then-current
  /// reference).
  std::size_t drift_alerts = 0;
  double max_psi = 0.0;
};

/// Owns the predictor and its drift monitor; decides weekly whether to
/// retrain (calendar cadence, PSI alert streak, or both composed) and
/// announces every fresh kernel through the publish hook. Deterministic:
/// training and PSI computation inherit the predictor config's exec
/// contract, and the decision state is pure bookkeeping.
class RetrainOrchestrator {
 public:
  using PublishHook = std::function<void(const ScoringKernel&)>;

  RetrainOrchestrator(RetrainPolicy policy, PredictorConfig predictor_config);

  /// Called with every newly trained kernel (bootstrap and retrains) —
  /// e.g. [&](const auto& k) { registry.publish(k); }.
  void set_publish_hook(PublishHook hook) { publish_ = std::move(hook); }

  /// Initial training on the window ending the week before `first_week`;
  /// fits the drift reference and publishes the kernel.
  void bootstrap(const dslsim::SimDataset& data, int first_week);

  /// Advance one week: first decide (on evidence through week-1) whether
  /// to retrain — and do it, republish, reset the reference — then
  /// measure this week's selected-feature PSI against the current
  /// reference and update the alert streak.
  [[nodiscard]] RetrainDecision observe_week(const dslsim::SimDataset& data,
                                             int week);

  [[nodiscard]] const TicketPredictor& predictor() const { return predictor_; }
  [[nodiscard]] const DriftMonitor& drift() const { return drift_; }
  [[nodiscard]] const RetrainPolicy& policy() const { return policy_; }
  /// Training-window end week of the most recent (re)training, or -1.
  [[nodiscard]] int last_trained_week() const noexcept {
    return last_trained_week_;
  }
  [[nodiscard]] int alert_streak() const noexcept { return alert_streak_; }

 private:
  void train_at(const dslsim::SimDataset& data, int week_before);

  RetrainPolicy policy_;
  TicketPredictor predictor_;
  DriftMonitor drift_;
  PublishHook publish_;
  int weeks_since_training_ = 0;
  int alert_streak_ = 0;
  int last_trained_week_ = -1;
};

}  // namespace nevermind::core
