#include "core/workforce.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::core {

double location_test_factor(dslsim::MajorLocation loc) noexcept {
  switch (loc) {
    case dslsim::MajorLocation::kHomeNetwork:
      return 0.7;  // swap a filter, reboot a modem
    case dslsim::MajorLocation::kF2:
      return 1.0;  // drop wire / protector checks
    case dslsim::MajorLocation::kF1:
      return 1.5;  // buried plant, crossbox work
    case dslsim::MajorLocation::kDslam:
      return 1.2;  // CO/DSLAM equipment checks
  }
  return 1.0;
}

TechnicianProfile sample_technician(util::Rng& rng) {
  TechnicianProfile tech;
  tech.skill = std::clamp(rng.lognormal(0.0, 0.3), 0.5, 2.5);
  tech.minutes_per_test = rng.uniform(14.0, 22.0);
  tech.travel_minutes = rng.uniform(8.0, 16.0);
  tech.overhead_minutes = rng.uniform(35.0, 55.0);
  return tech;
}

namespace {

double test_minutes(const TechnicianProfile& tech,
                    dslsim::MajorLocation loc) {
  return tech.minutes_per_test * location_test_factor(loc) / tech.skill;
}

}  // namespace

DispatchSimResult simulate_dispatch(std::span<const RankedDisposition> plan,
                                    dslsim::DispositionId truth,
                                    const dslsim::FaultCatalog& catalog,
                                    const TechnicianProfile& tech) {
  DispatchSimResult result;
  result.minutes = tech.overhead_minutes;
  bool has_location = false;
  dslsim::MajorLocation current = dslsim::MajorLocation::kHomeNetwork;
  for (const auto& candidate : plan) {
    const auto loc = catalog.signature(candidate.disposition).location;
    if (has_location && loc != current) {
      result.minutes += tech.travel_minutes;
      ++result.location_changes;
    }
    current = loc;
    has_location = true;
    result.minutes += test_minutes(tech, loc);
    ++result.tests_run;
    if (candidate.disposition == truth) {
      result.found = true;
      break;
    }
  }
  return result;
}

std::vector<RankedDisposition> plan_cost_aware(
    std::span<const RankedDisposition> ranked,
    const dslsim::FaultCatalog& catalog, const TechnicianProfile& tech,
    double slack) {
  std::vector<RankedDisposition> remaining(ranked.begin(), ranked.end());
  std::vector<RankedDisposition> plan;
  plan.reserve(remaining.size());

  bool has_location = false;
  dslsim::MajorLocation current = dslsim::MajorLocation::kHomeNetwork;
  while (!remaining.empty()) {
    // Best probability-per-minute ratio.
    double best_ratio = -1.0;
    for (const auto& c : remaining) {
      const auto loc = catalog.signature(c.disposition).location;
      const double ratio = c.probability / test_minutes(tech, loc);
      best_ratio = std::max(best_ratio, ratio);
    }
    // Among near-best candidates, prefer staying put (save travel).
    std::size_t pick = 0;
    double pick_key = -1.0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const auto loc = catalog.signature(remaining[i].disposition).location;
      const double ratio =
          remaining[i].probability / test_minutes(tech, loc);
      if (ratio < best_ratio * slack) continue;
      const double stay_bonus = (has_location && loc == current) ? 1.15 : 1.0;
      const double key = ratio * stay_bonus;
      if (key > pick_key) {
        pick_key = key;
        pick = i;
      }
    }
    current = catalog.signature(remaining[pick].disposition).location;
    has_location = true;
    plan.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return plan;
}

}  // namespace nevermind::core
