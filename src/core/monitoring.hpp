// Deployment monitoring: population-stability tracking of the feature
// stream. A deployed NEVERMIND scores fresh measurements with a model
// trained months earlier (the paper's trial plan, §8); when the
// distribution of the selected features drifts — plant upgrades, new
// modem firmware, seasonal weather — prediction quality decays before
// anyone notices from ticket counts alone. The population stability
// index (PSI) against the training reference is the standard early
// warning; bench_ablation_drift shows the accuracy decay it predicts.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace nevermind::core {

/// PSI between a reference sample and a current sample, using
/// equal-frequency bins fitted on the reference (plus a bin for
/// missing values). Conventional reading: < 0.1 stable, 0.1–0.25 worth
/// watching, > 0.25 significant shift.
[[nodiscard]] double population_stability_index(
    std::span<const float> reference, std::span<const float> current,
    std::size_t bins = 10);

/// Per-column drift monitor fitted once on the training block.
class DriftMonitor {
 public:
  DriftMonitor() = default;

  /// Learn per-column reference bins (equal-frequency) and expected
  /// occupancy from the training data.
  void fit(const ml::DatasetView& reference, std::size_t bins = 10);

  [[nodiscard]] bool fitted() const noexcept { return !columns_.empty(); }
  [[nodiscard]] std::size_t n_columns() const noexcept {
    return columns_.size();
  }

  /// PSI per column for a scoring-time block (columns must align with
  /// the reference layout).
  [[nodiscard]] std::vector<double> column_psi(
      const ml::DatasetView& current) const;

  struct Alert {
    std::size_t column = 0;
    std::string name;
    double psi = 0.0;
  };

  /// Columns whose PSI exceeds `threshold`, worst first.
  [[nodiscard]] std::vector<Alert> alerts(const ml::DatasetView& current,
                                          double threshold = 0.25) const;

 private:
  struct ColumnReference {
    std::string name;
    std::vector<float> edges;        // ascending interior bin edges
    std::vector<double> expected;    // fractions per bin (+1 missing bin)
  };
  std::vector<ColumnReference> columns_;

  [[nodiscard]] static std::vector<double> occupancy(
      const ColumnReference& ref, const ml::ColumnView& values);
};

}  // namespace nevermind::core
