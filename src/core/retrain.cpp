#include "core/retrain.hpp"

#include <algorithm>

#include "features/encoder.hpp"

namespace nevermind::core {

const char* retrain_trigger_name(RetrainTrigger t) noexcept {
  switch (t) {
    case RetrainTrigger::kNone:
      return "none";
    case RetrainTrigger::kCalendar:
      return "calendar";
    case RetrainTrigger::kDrift:
      return "drift";
  }
  return "?";
}

RetrainOrchestrator::RetrainOrchestrator(RetrainPolicy policy,
                                         PredictorConfig predictor_config)
    : policy_(policy), predictor_(std::move(predictor_config)) {}

void RetrainOrchestrator::train_at(const dslsim::SimDataset& data,
                                   int week_before) {
  const int train_to = week_before;
  const int train_from =
      std::max(0, train_to - policy_.training_window_weeks + 1);
  predictor_.train(data, train_from, train_to);
  last_trained_week_ = train_to;

  // Reference distributions for drift monitoring: the selected feature
  // columns over the training window.
  const features::TicketLabeler labeler{predictor_.config().horizon_days};
  const auto block = features::encode_weeks(
      data, train_from, train_to, predictor_.full_encoder_config(), labeler);
  drift_.fit(
      ml::DatasetView(block.dataset).cols(predictor_.selected_features()));

  if (publish_) publish_(predictor_.kernel());
}

void RetrainOrchestrator::bootstrap(const dslsim::SimDataset& data,
                                    int first_week) {
  train_at(data, first_week - 1);
  weeks_since_training_ = 0;
  alert_streak_ = 0;
}

RetrainDecision RetrainOrchestrator::observe_week(
    const dslsim::SimDataset& data, int week) {
  RetrainDecision decision;
  decision.week = week;

  // Decide before scoring the week, on evidence accumulated through
  // week-1 — the calendar cadence composes with the drift trigger, and
  // either can run alone.
  if (policy_.retrain_every_weeks > 0 &&
      weeks_since_training_ >= policy_.retrain_every_weeks) {
    decision.trigger = RetrainTrigger::kCalendar;
  } else if (policy_.drift_min_alerts > 0 &&
             alert_streak_ >= policy_.drift_patience_weeks &&
             weeks_since_training_ >= policy_.drift_cooldown_weeks) {
    decision.trigger = RetrainTrigger::kDrift;
  }
  if (decision.trigger != RetrainTrigger::kNone) {
    train_at(data, week - 1);
    weeks_since_training_ = 0;
    alert_streak_ = 0;
    decision.retrained = true;
  }
  ++weeks_since_training_;

  // This week's PSI against the (possibly fresh) reference.
  const features::TicketLabeler labeler{predictor_.config().horizon_days};
  const auto block = features::encode_weeks(
      data, week, week, predictor_.full_encoder_config(), labeler);
  const auto current =
      ml::DatasetView(block.dataset).cols(predictor_.selected_features());
  for (double p : drift_.column_psi(current)) {
    decision.max_psi = std::max(decision.max_psi, p);
    decision.drift_alerts += p > policy_.psi_alert_threshold ? 1 : 0;
  }
  if (policy_.drift_min_alerts > 0 &&
      decision.drift_alerts >= policy_.drift_min_alerts) {
    ++alert_streak_;
  } else {
    alert_streak_ = 0;
  }
  return decision;
}

}  // namespace nevermind::core
