#include "core/nevermind.hpp"

namespace nevermind::core {

namespace {

NevermindConfig with_shared_exec(NevermindConfig config) {
  if (config.exec.parallel()) {
    if (!config.predictor.exec.parallel()) config.predictor.exec = config.exec;
    if (!config.locator.exec.parallel()) config.locator.exec = config.exec;
  }
  if (config.binning == ml::BinningMode::kHistogram) {
    if (config.predictor.binning == ml::BinningMode::kExact) {
      config.predictor.binning = config.binning;
    }
    if (config.locator.binning == ml::BinningMode::kExact) {
      config.locator.binning = config.binning;
    }
  }
  return config;
}

}  // namespace

Nevermind::Nevermind(NevermindConfig config)
    : config_(with_shared_exec(std::move(config))),
      predictor_(config_.predictor),
      locator_(config_.locator) {}

void Nevermind::train(const dslsim::SimDataset& data, int predictor_from,
                      int predictor_to, int locator_from, int locator_to) {
  predictor_.train(data, predictor_from, predictor_to);
  locator_.train(data, locator_from, locator_to);
}

WeeklyCycle Nevermind::run_week(const dslsim::SimDataset& data,
                                int week) const {
  WeeklyCycle cycle;
  cycle.week = week;
  cycle.predictions = predictor_.predict_week(data, week);
  cycle.atds = run_proactive_week(data, cycle.predictions, locator_,
                                  config_.atds, week,
                                  config_.predictor.horizon_days);
  return cycle;
}

}  // namespace nevermind::core
