// Facade tying the whole proactive pipeline together (paper Fig 3,
// bottom box): line measurements -> ticket predictor -> ATDS -> trouble
// locator -> field dispatch. This is the entry point example apps and
// operators use; the individual components stay directly usable for
// experiments.
#pragma once

#include <vector>

#include "core/atds.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"

namespace nevermind::core {

struct NevermindConfig {
  PredictorConfig predictor;
  LocatorConfig locator;
  AtdsConfig atds;
  /// Shared execution context for the whole pipeline. When parallel, it
  /// is propagated into the predictor and locator configs (unless those
  /// already carry their own pool), so one thread pool serves training
  /// and the weekly scoring cycle. Predictions and models are
  /// byte-identical at every thread count.
  exec::ExecContext exec;
  /// Pipeline-wide training path. kHistogram is propagated into both
  /// component configs that still carry the default exact mode, the
  /// same way the shared exec context is.
  ml::BinningMode binning = ml::BinningMode::kExact;
};

/// One proactive cycle's artefacts: the ranked predictions and the
/// simulated ATDS outcome.
struct WeeklyCycle {
  int week = 0;
  std::vector<Prediction> predictions;  // all lines, ranked
  AtdsWeekReport atds;
};

class Nevermind {
 public:
  explicit Nevermind(NevermindConfig config);

  /// Train both components. The predictor uses measurement weeks
  /// [predictor_from, predictor_to]; the locator trains on dispatches
  /// in [locator_from, locator_to] (the paper uses different spans for
  /// the two).
  void train(const dslsim::SimDataset& data, int predictor_from,
             int predictor_to, int locator_from, int locator_to);

  /// Run one proactive Saturday: predict, submit the top-N to ATDS,
  /// dispatch with the locator, account the outcome.
  [[nodiscard]] WeeklyCycle run_week(const dslsim::SimDataset& data,
                                     int week) const;

  [[nodiscard]] const TicketPredictor& predictor() const { return predictor_; }
  [[nodiscard]] const TroubleLocator& locator() const { return locator_; }
  [[nodiscard]] const NevermindConfig& config() const { return config_; }

 private:
  NevermindConfig config_;
  TicketPredictor predictor_;
  TroubleLocator locator_;
};

}  // namespace nevermind::core
