#include "core/deployment.hpp"

#include <algorithm>
#include <stdexcept>

namespace nevermind::core {

RollingDeployment::RollingDeployment(DeploymentConfig config)
    : config_(std::move(config)),
      orchestrator_(config_.retrain_policy(), config_.predictor),
      locator_(config_.locator) {}

void RollingDeployment::train_locator_at(const dslsim::SimDataset& data,
                                         int week_before) {
  const int train_to = week_before;
  const int train_from =
      std::max(0, train_to - config_.training_window_weeks + 1);
  locator_.train(data, train_from, train_to);
}

std::vector<DeploymentWeekReport> RollingDeployment::run(
    const dslsim::SimDataset& data, int first_week, int last_week) {
  if (first_week < config_.training_window_weeks) {
    throw std::invalid_argument(
        "RollingDeployment: not enough history before first_week");
  }
  orchestrator_.bootstrap(data, first_week);
  train_locator_at(data, first_week - 1);

  std::vector<DeploymentWeekReport> reports;
  for (int week = first_week; week <= last_week; ++week) {
    DeploymentWeekReport report;
    report.week = week;

    const RetrainDecision decision = orchestrator_.observe_week(data, week);
    report.retrained = decision.retrained;
    report.trigger = decision.trigger;
    report.drift_alerts = decision.drift_alerts;
    report.max_psi = decision.max_psi;
    if (decision.retrained) train_locator_at(data, week - 1);

    const auto predictions =
        orchestrator_.predictor().predict_week(data, week);
    report.atds = run_proactive_week(data, predictions, locator_,
                                     config_.atds, week,
                                     config_.predictor.horizon_days);
    report.precision =
        report.atds.submitted > 0
            ? static_cast<double>(report.atds.would_ticket) /
                  static_cast<double>(report.atds.submitted)
            : 0.0;
    reports.push_back(report);
  }
  return reports;
}

}  // namespace nevermind::core
