#include "core/deployment.hpp"

#include <algorithm>
#include <stdexcept>

namespace nevermind::core {

RollingDeployment::RollingDeployment(DeploymentConfig config)
    : config_(std::move(config)),
      predictor_(config_.predictor),
      locator_(config_.locator) {}

void RollingDeployment::train_at(const dslsim::SimDataset& data,
                                 int week_before) {
  const int train_to = week_before;
  const int train_from =
      std::max(0, train_to - config_.training_window_weeks + 1);
  predictor_.train(data, train_from, train_to);
  locator_.train(data, train_from, train_to);

  // Reference distributions for drift monitoring: the selected feature
  // columns over the training window.
  const features::TicketLabeler labeler{config_.predictor.horizon_days};
  const auto block = features::encode_weeks(
      data, train_from, train_to, predictor_.full_encoder_config(), labeler);
  drift_.fit(
      ml::DatasetView(block.dataset).cols(predictor_.selected_features()));
}

std::vector<DeploymentWeekReport> RollingDeployment::run(
    const dslsim::SimDataset& data, int first_week, int last_week) {
  if (first_week < config_.training_window_weeks) {
    throw std::invalid_argument(
        "RollingDeployment: not enough history before first_week");
  }
  train_at(data, first_week - 1);

  std::vector<DeploymentWeekReport> reports;
  int weeks_since_training = 0;
  for (int week = first_week; week <= last_week; ++week) {
    DeploymentWeekReport report;
    report.week = week;

    if (config_.retrain_every_weeks > 0 &&
        weeks_since_training >= config_.retrain_every_weeks) {
      train_at(data, week - 1);
      weeks_since_training = 0;
      report.retrained = true;
    }
    ++weeks_since_training;

    const auto predictions = predictor_.predict_week(data, week);
    report.atds = run_proactive_week(data, predictions, locator_,
                                     config_.atds, week,
                                     config_.predictor.horizon_days);
    report.precision =
        report.atds.submitted > 0
            ? static_cast<double>(report.atds.would_ticket) /
                  static_cast<double>(report.atds.submitted)
            : 0.0;

    // Drift check on this week's selected-feature stream.
    const features::TicketLabeler labeler{config_.predictor.horizon_days};
    const auto block = features::encode_weeks(
        data, week, week, predictor_.full_encoder_config(), labeler);
    const auto current =
        ml::DatasetView(block.dataset).cols(predictor_.selected_features());
    const auto psi = drift_.column_psi(current);
    for (double p : psi) {
      report.max_psi = std::max(report.max_psi, p);
      report.drift_alerts += p > config_.psi_alert_threshold ? 1 : 0;
    }
    reports.push_back(report);
  }
  return reports;
}

}  // namespace nevermind::core
