// Field-technician workforce model and cost-aware dispatch planning.
//
// Section 6.1 of the paper lists three ways to beat the naive ranked
// list: better probabilities (the trouble locator — implemented), test
// times that differ per location, and travel time between locations.
// The paper explicitly defers the latter two ("A this point, the
// time/cost for testing a location ... are not available and considered
// as constants"). This module implements them as the natural extension:
// a technician profile with per-location test times and inter-location
// travel costs, a dispatch simulator that walks a ranked plan, and the
// classical optimal search ordering (descending p_i / t_i) that
// minimizes expected time-to-find for independent location tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/trouble_locator.hpp"
#include "dslsim/faults.hpp"
#include "util/rng.hpp"

namespace nevermind::core {

struct TechnicianProfile {
  /// Experience multiplier: testing speed scales with skill (paper:
  /// the current process "depends too much on the experience of the
  /// field technicians").
  double skill = 1.0;
  /// Base minutes to test one candidate disposition, before the
  /// per-location factor and skill.
  double minutes_per_test = 18.0;
  /// Minutes to move between two different major locations (home,
  /// crossbox, DSLAM sites).
  double travel_minutes = 12.0;
  /// Fixed truck-roll overhead (drive out + setup).
  double overhead_minutes = 45.0;
};

/// Relative effort of testing a disposition at each major location:
/// home-network checks are quick swap tests, buried plant is slow.
[[nodiscard]] double location_test_factor(dslsim::MajorLocation loc) noexcept;

/// Sample a workforce member; skill is log-normal around 1.
[[nodiscard]] TechnicianProfile sample_technician(util::Rng& rng);

struct DispatchSimResult {
  bool found = false;
  std::size_t tests_run = 0;
  double minutes = 0.0;
  /// Major-location moves the technician made.
  std::size_t location_changes = 0;
};

/// Walk a ranked plan until the true disposition is reached (or the
/// plan is exhausted), accounting test time per location and travel
/// whenever consecutive tests are at different major locations.
[[nodiscard]] DispatchSimResult simulate_dispatch(
    std::span<const RankedDisposition> plan, dslsim::DispositionId truth,
    const dslsim::FaultCatalog& catalog, const TechnicianProfile& tech);

/// The paper's deferred improvement, implemented: reorder a
/// probability-ranked plan by expected cost-effectiveness p_i / t_i
/// (with t_i the location-adjusted test time) — the classical optimal
/// ordering for minimizing expected search time over independent
/// tests. Travel is handled greedily: among candidates within `slack`
/// of the best ratio, prefer ones at the technician's current location.
[[nodiscard]] std::vector<RankedDisposition> plan_cost_aware(
    std::span<const RankedDisposition> ranked,
    const dslsim::FaultCatalog& catalog, const TechnicianProfile& tech,
    double slack = 0.8);

}  // namespace nevermind::core
