#include "core/atds.hpp"

#include <algorithm>

#include "util/calendar.hpp"

namespace nevermind::core {

AtdsWeekReport run_proactive_week(const dslsim::SimDataset& data,
                                  const std::vector<Prediction>& ranked,
                                  const TroubleLocator& locator,
                                  const AtdsConfig& config, int week,
                                  int horizon_days) {
  AtdsWeekReport report;
  report.week = week;
  const util::Day test_day = util::saturday_of_week(week);
  const util::Day fix_day = test_day + config.days_to_fix;

  // Feature rows for dispatch-time ranking: one encode of the week.
  const features::TicketLabeler labeler{horizon_days};
  const features::EncodedBlock block = features::encode_weeks(
      data, week, week, locator.encoder_config(), labeler);
  // Map line -> row explicitly rather than assuming emission order.
  std::vector<std::size_t> row_of_line(data.n_lines(), 0);
  for (std::size_t r = 0; r < block.line_of_row.size(); ++r) {
    row_of_line[block.line_of_row[r]] = r;
  }

  const std::size_t take = std::min(config.weekly_capacity, ranked.size());
  const std::size_t full_sweep = locator.covered().size();

  std::vector<float> row(block.dataset.n_cols());
  for (std::size_t i = 0; i < take; ++i) {
    const dslsim::LineId line = ranked[i].line;
    ++report.submitted;

    // Ground truth: the active fault closest to the end host (what the
    // technician would ultimately blame).
    const dslsim::FaultEpisode* found = nullptr;
    int best_prox = 1000;
    for (std::uint32_t idx : data.line_episode_indices(line)) {
      const auto& e = data.episodes()[idx];
      if (fix_day >= e.onset && fix_day < e.cleared) {
        const int prox = dslsim::end_host_proximity(
            data.catalog().signature(e.disposition).location);
        if (prox < best_prox) {
          best_prox = prox;
          found = &e;
        }
      }
    }

    const auto next_ticket = data.next_edge_ticket_after(line, test_day);
    const bool would_ticket =
        next_ticket.has_value() && *next_ticket <= test_day + horizon_days;
    if (would_ticket) ++report.would_ticket;

    if (found == nullptr) {
      ++report.clean_dispatches;
      // Nothing to find: the technician sweeps every location.
      const double sweep = config.dispatch_overhead_minutes +
                           static_cast<double>(full_sweep) *
                               config.minutes_per_test;
      report.locator_minutes += sweep;
      report.experience_minutes += sweep;
      continue;
    }

    ++report.with_live_fault;
    if (would_ticket && *next_ticket > fix_day) {
      ++report.tickets_prevented;
    } else if (!would_ticket) {
      ++report.silent_fixed;
    }

    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = block.dataset.at(row_of_line[line], j);
    }
    const std::size_t tests_locator =
        locator.rank_of(row, found->disposition, LocatorModelKind::kCombined);
    const std::size_t tests_prior = locator.rank_of(
        row, found->disposition, LocatorModelKind::kExperience);
    report.locator_minutes +=
        config.dispatch_overhead_minutes +
        static_cast<double>(tests_locator) * config.minutes_per_test;
    report.experience_minutes +=
        config.dispatch_overhead_minutes +
        static_cast<double>(tests_prior) * config.minutes_per_test;
  }
  return report;
}

}  // namespace nevermind::core
