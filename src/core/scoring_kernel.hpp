// The deployable scoring artefact of a trained ticket predictor: the
// full encoder layout (including the product pairs chosen during
// feature selection), the selected column indices into that layout, the
// BStump ensemble and its Platt calibrator.
//
// Both scoring paths run through this one kernel — the offline batch
// path (TicketPredictor::predict_week over a SimDataset) and the online
// serving path (serve::ScoringService over a LineStateStore) — so the
// two cannot drift: a served score is byte-identical to the batch score
// of the same feature row by construction.
//
// The kernel also round-trips through a versioned text artefact
// ("nmkernel v1", built on ml/serialization), which is what crosses the
// train-offline / serve-online boundary.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "features/encoder.hpp"
#include "ml/adaboost.hpp"
#include "ml/calibration.hpp"

namespace nevermind::core {

struct ScoringKernel {
  /// Encoder configuration including derived features; feature rows fed
  /// to score_row must follow all_columns(encoder).
  features::EncoderConfig encoder;
  /// Model feature j reads full-row column selected[j].
  std::vector<std::size_t> selected;
  /// Column infos of the selected features (names for artefact sanity
  /// checks and explanations).
  std::vector<ml::ColumnInfo> columns;
  ml::BStumpModel model;
  ml::PlattCalibrator calibrator;

  [[nodiscard]] bool trained() const noexcept { return !model.empty(); }

  /// Raw margin for one fully encoded row (all_columns(encoder) wide).
  /// Stumps accumulate in ensemble order — the same order the batch
  /// path uses per row — so single-row and batch scores are identical.
  [[nodiscard]] double score_row(std::span<const float> full_row) const;

  [[nodiscard]] double probability(double score) const noexcept {
    return calibrator.probability(score);
  }

  /// Column-oriented batch scoring of an encoded block (the offline
  /// path). Chunks rows under `exec`; every chunk adds stumps in
  /// ensemble order, so results match serial bit for bit.
  [[nodiscard]] std::vector<double> score_block(
      const features::EncodedBlock& block,
      const exec::ExecContext& exec = exec::ExecContext::serial()) const;

  /// Versioned text artefact ("nmkernel v1"). load returns nullopt on
  /// malformed input and, when `error` is non-null, a human-readable
  /// reason (distinguishing version mismatch from corruption).
  void save(std::ostream& os) const;
  [[nodiscard]] static std::optional<ScoringKernel> load(
      std::istream& is, std::string* error = nullptr);
};

}  // namespace nevermind::core
