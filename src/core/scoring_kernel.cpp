#include "core/scoring_kernel.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "ml/serialization.hpp"

namespace nevermind::core {

namespace {

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

double ScoringKernel::score_row(std::span<const float> full_row) const {
  double score = 0.0;
  for (const auto& stump : model.stumps()) {
    score += stump.evaluate(full_row[selected[stump.feature]]);
  }
  return score;
}

std::vector<double> ScoringKernel::score_block(
    const features::EncodedBlock& block, const exec::ExecContext& exec) const {
  // Batch scoring chunks across rows: each row's accumulator belongs to
  // one chunk and adds stumps in order, so results match serial bit for
  // bit.
  std::vector<double> scores(block.dataset.n_rows(), 0.0);
  exec.parallel_for(
      0, block.dataset.n_rows(), 0, [&](std::size_t b, std::size_t e) {
        for (const auto& stump : model.stumps()) {
          const auto col = block.dataset.column(selected.at(stump.feature));
          for (std::size_t r = b; r < e; ++r) {
            scores[r] += stump.evaluate(col[r]);
          }
        }
      });
  return scores;
}

void ScoringKernel::save(std::ostream& os) const {
  os << "nmkernel v1\n";
  features::save_encoder_config(os, encoder);
  os << "selected " << selected.size();
  for (const std::size_t j : selected) os << ' ' << j;
  os << '\n';
  os << "columns " << columns.size() << '\n';
  // Names contain '.', '*', never whitespace; one per line.
  for (const auto& col : columns) {
    os << col.name << ' ' << (col.categorical ? 1 : 0) << '\n';
  }
  ml::save_model(os, model);
  ml::save_calibrator(os, calibrator);
}

std::optional<ScoringKernel> ScoringKernel::load(std::istream& is,
                                                 std::string* error) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != "nmkernel") {
    fail(error, "not a predictor kernel artefact (missing 'nmkernel' magic)");
    return std::nullopt;
  }
  if (version != "v1") {
    fail(error, "unsupported predictor kernel version '" + version +
                    "' (this build reads v1)");
    return std::nullopt;
  }
  ScoringKernel kernel;
  auto encoder = features::load_encoder_config(is);
  if (!encoder.has_value()) {
    fail(error, "malformed encoder configuration block");
    return std::nullopt;
  }
  kernel.encoder = std::move(*encoder);

  std::string tag;
  std::size_t n_selected = 0;
  if (!(is >> tag >> n_selected) || tag != "selected") {
    fail(error, "malformed selected-feature list");
    return std::nullopt;
  }
  kernel.selected.resize(n_selected);
  for (std::size_t i = 0; i < n_selected; ++i) {
    if (!(is >> kernel.selected[i])) {
      fail(error, "truncated selected-feature list");
      return std::nullopt;
    }
  }

  std::size_t n_columns = 0;
  if (!(is >> tag >> n_columns) || tag != "columns") {
    fail(error, "malformed column list");
    return std::nullopt;
  }
  kernel.columns.resize(n_columns);
  for (std::size_t i = 0; i < n_columns; ++i) {
    int categorical = 0;
    if (!(is >> kernel.columns[i].name >> categorical)) {
      fail(error, "truncated column list");
      return std::nullopt;
    }
    kernel.columns[i].categorical = categorical != 0;
  }
  if (n_columns != n_selected) {
    fail(error, "column/selected count mismatch");
    return std::nullopt;
  }

  auto model = ml::load_model(is);
  if (!model.has_value()) {
    fail(error, "malformed BStump ensemble block");
    return std::nullopt;
  }
  kernel.model = std::move(*model);

  // Every stump must reference a valid selected slot, and every selected
  // index must exist in the encoder's full layout.
  const std::size_t n_all = features::all_columns(kernel.encoder).size();
  for (const auto& stump : kernel.model.stumps()) {
    if (stump.feature >= kernel.selected.size()) {
      fail(error, "stump references feature beyond the selected set");
      return std::nullopt;
    }
  }
  for (const std::size_t j : kernel.selected) {
    if (j >= n_all) {
      fail(error, "selected feature index beyond the encoder layout");
      return std::nullopt;
    }
  }

  auto calibrator = ml::load_calibrator(is);
  if (!calibrator.has_value()) {
    fail(error, "malformed Platt calibrator block");
    return std::nullopt;
  }
  kernel.calibrator = *calibrator;
  return kernel;
}

}  // namespace nevermind::core
