#include "core/ticket_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/cross_validation.hpp"
#include "ml/metrics.hpp"

namespace nevermind::core {

namespace {

/// Row indices of a block whose week lies in [from, to].
std::vector<std::size_t> rows_in_weeks(const features::EncodedBlock& block,
                                       int from, int to) {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < block.week_of_row.size(); ++r) {
    if (block.week_of_row[r] >= from && block.week_of_row[r] <= to) {
      rows.push_back(r);
    }
  }
  return rows;
}

}  // namespace

TicketPredictor::TicketPredictor(PredictorConfig config)
    : config_(std::move(config)) {}

TicketPredictor::TicketPredictor(PredictorConfig config, ScoringKernel kernel)
    : config_(std::move(config)), kernel_(std::move(kernel)) {}

void TicketPredictor::train(const dslsim::SimDataset& data, int train_from,
                            int train_to) {
  if (train_to < train_from) {
    throw std::invalid_argument("TicketPredictor::train: empty week range");
  }
  const int n_weeks = train_to - train_from + 1;
  const int n_val = std::clamp(
      static_cast<int>(std::lround(n_weeks * config_.validation_fraction)), 1,
      std::max(1, n_weeks - 1));
  const int sel_train_to = train_to - n_val;  // may equal train_from

  const features::TicketLabeler labeler{config_.horizon_days};

  // ---- stage 1: score base features on the validation split ----------
  features::EncoderConfig base_cfg = config_.encoder;
  base_cfg.include_quadratic = false;
  base_cfg.product_pairs.clear();

  ml::FeatureScoringConfig scoring;
  scoring.boost_iterations = config_.selection_boost_iterations;
  scoring.top_n = config_.top_n * static_cast<std::size_t>(n_val);
  scoring.exec = config_.exec;

  features::EncodedBlock base_block =
      features::encode_weeks(data, train_from, train_to, base_cfg, labeler);
  const auto train_rows = rows_in_weeks(base_block, train_from, sel_train_to);
  const auto val_rows = rows_in_weeks(base_block, sel_train_to + 1, train_to);
  const ml::DatasetView base_view(base_block.dataset);
  const ml::DatasetView sel_train = base_view.rows(train_rows);
  const ml::DatasetView sel_val = base_view.rows(val_rows);

  const std::vector<double> base_scores =
      ml::score_features(sel_train, sel_val, config_.selection, scoring);

  // Base features above the history/customer threshold. Baseline
  // methods (Fig 6) have no comparable absolute threshold; they take
  // the top-k directly.
  std::vector<std::size_t> base_selected;
  if (config_.selection == ml::SelectionMethod::kTopNAp) {
    base_selected =
        ml::select_above_threshold(base_scores, config_.history_threshold);
    if (base_selected.empty()) {
      base_selected = ml::select_top_k(base_scores, 10);
    }
  } else {
    base_selected =
        ml::select_top_k(base_scores, config_.max_selected_features);
  }

  // ---- stage 2: derived features over the strongest base features ----
  kernel_.encoder = base_cfg;
  std::vector<double> full_scores = base_scores;
  if (config_.use_derived_features) {
    kernel_.encoder.include_quadratic = true;
    const auto pool = ml::select_top_k(
        base_scores, std::min(config_.product_pool, base_scores.size()));
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        kernel_.encoder.product_pairs.emplace_back(pool[i], pool[j]);
      }
    }

    features::EncodedBlock full_block = features::encode_weeks(
        data, train_from, train_to, kernel_.encoder, labeler);
    const auto ftrain = rows_in_weeks(full_block, train_from, sel_train_to);
    const auto fval = rows_in_weeks(full_block, sel_train_to + 1, train_to);
    const ml::DatasetView full_view(full_block.dataset);
    const ml::DatasetView dsel_train = full_view.rows(ftrain);
    const ml::DatasetView dsel_val = full_view.rows(fval);

    const std::size_t n_base = base_scores.size();
    const std::size_t n_all = full_block.dataset.n_cols();
    full_scores.resize(n_all, 0.0);
    const std::vector<double> all_scores = ml::score_features(
        dsel_train, dsel_val, config_.selection, scoring,
        config_.selection == ml::SelectionMethod::kTopNAp ? n_base : 0);
    for (std::size_t j = n_base; j < n_all; ++j) full_scores[j] = all_scores[j];

    const std::size_t n_quadratic = n_base;  // one square per base column
    kernel_.selected = base_selected;
    if (config_.selection == ml::SelectionMethod::kTopNAp) {
      for (std::size_t j = n_base; j < n_base + n_quadratic && j < n_all; ++j) {
        if (full_scores[j] > config_.quadratic_threshold) kernel_.selected.push_back(j);
      }
      // A product earns a slot only when it clearly beats BOTH of its
      // factors (the paper's rationale for the stricter threshold):
      // otherwise it is a redundant echo of a strong base feature.
      for (std::size_t j = n_base + n_quadratic; j < n_all; ++j) {
        const auto& pair =
            kernel_.encoder.product_pairs[j - n_base - n_quadratic];
        const double factor_best =
            std::max(base_scores[pair.first], base_scores[pair.second]);
        if (full_scores[j] > config_.product_threshold &&
            full_scores[j] > 1.2 * factor_best) {
          kernel_.selected.push_back(j);
        }
      }
    } else {
      for (std::size_t j = n_base; j < n_all; ++j) {
        if (all_scores[j] > 0.0) kernel_.selected.push_back(j);
      }
    }
  } else {
    kernel_.selected = base_selected;
  }

  // Cap the feature count, keeping the strongest.
  if (kernel_.selected.size() > config_.max_selected_features) {
    std::stable_sort(kernel_.selected.begin(), kernel_.selected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return full_scores[a] > full_scores[b];
                     });
    kernel_.selected.resize(config_.max_selected_features);
    std::sort(kernel_.selected.begin(), kernel_.selected.end());
  }

  // ---- stage 3: final ensemble on the selected columns ----------------
  features::EncodedBlock final_block = features::encode_weeks(
      data, train_from, train_to, kernel_.encoder, labeler);
  const ml::DatasetView final_view(final_block.dataset);
  const ml::DatasetView final_train =
      final_view.rows(rows_in_weeks(final_block, train_from, sel_train_to))
          .cols(kernel_.selected);
  const ml::DatasetView final_val =
      final_view.rows(rows_in_weeks(final_block, sel_train_to + 1, train_to))
          .cols(kernel_.selected);

  kernel_.columns = final_train.columns_copy();

  ml::BStumpConfig boost;
  boost.iterations = config_.boost_iterations;
  boost.binning = config_.binning;
  boost.exec = config_.exec;
  if (config_.tune_boost_iterations) {
    const std::size_t base = std::max<std::size_t>(config_.boost_iterations, 4);
    const std::size_t candidates[] = {base / 4, base / 2, base, base * 2};
    const auto tuned = ml::select_boosting_rounds(
        final_train, candidates,
        config_.top_n * static_cast<std::size_t>(n_val), 3, config_.exec,
        boost);
    if (tuned.best_rounds > 0) boost.iterations = tuned.best_rounds;
  }
  kernel_.model = ml::train_bstump(final_train, boost);

  // Calibrate on the held-out split so probabilities are honest.
  const std::vector<double> val_scores =
      kernel_.model.score_dataset(final_val, config_.exec);
  std::vector<std::uint8_t> val_label_storage;
  kernel_.calibrator =
      ml::fit_platt(val_scores, final_val.labels(val_label_storage));
}

std::vector<double> TicketPredictor::score_block(
    const features::EncodedBlock& block) const {
  if (kernel_.model.empty()) {
    throw std::logic_error("TicketPredictor: predict before train");
  }
  return kernel_.score_block(block, config_.exec);
}

std::vector<Prediction> TicketPredictor::predict_week(
    const dslsim::SimDataset& data, int week) const {
  const features::TicketLabeler labeler{config_.horizon_days};
  const features::EncodedBlock block =
      features::encode_weeks(data, week, week, kernel_.encoder, labeler);
  const std::vector<double> scores = score_block(block);

  std::vector<Prediction> out(scores.size());
  config_.exec.parallel_for(
      0, scores.size(), 0, [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r) {
          out[r].line = block.line_of_row[r];
          out[r].score = scores[r];
          out[r].probability = kernel_.calibrator.probability(scores[r]);
        }
      });
  // Chunk-sorted then stably merged in chunk order — the unique stable
  // order, so the weekly ranking is byte-identical at any thread count.
  config_.exec.parallel_stable_sort(out.begin(), out.end(),
                                    [](const Prediction& a,
                                       const Prediction& b) {
                                      return a.score > b.score;
                                    });
  return out;
}

}  // namespace nevermind::core
