#include "core/ticket_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/cross_validation.hpp"
#include "ml/metrics.hpp"

namespace nevermind::core {

namespace {

/// Row indices of a block whose week lies in [from, to].
std::vector<std::size_t> rows_in_weeks(const features::EncodedBlock& block,
                                       int from, int to) {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < block.week_of_row.size(); ++r) {
    if (block.week_of_row[r] >= from && block.week_of_row[r] <= to) {
      rows.push_back(r);
    }
  }
  return rows;
}

/// Validation weeks held out of the selection/training split.
int validation_weeks(int n_weeks, double fraction) {
  return std::clamp(static_cast<int>(std::lround(n_weeks * fraction)), 1,
                    std::max(1, n_weeks - 1));
}

/// Stage-1 base-feature selection from the per-feature scores.
std::vector<std::size_t> select_base(const PredictorConfig& config,
                                     const std::vector<double>& scores) {
  if (config.selection == ml::SelectionMethod::kTopNAp) {
    auto selected =
        ml::select_above_threshold(scores, config.history_threshold);
    if (selected.empty()) selected = ml::select_top_k(scores, 10);
    return selected;
  }
  return ml::select_top_k(scores, config.max_selected_features);
}

/// Product pairs implied by stage-1 scores: all pairs over the
/// `product_pool` strongest base features.
std::vector<std::pair<std::size_t, std::size_t>> pairs_from_scores(
    const PredictorConfig& config, const std::vector<double>& base_scores) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  const auto pool = ml::select_top_k(
      base_scores, std::min(config.product_pool, base_scores.size()));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      pairs.emplace_back(pool[i], pool[j]);
    }
  }
  return pairs;
}

/// True when the non-derived encoder fields agree — the precondition
/// for training this predictor off an externally encoded block.
bool same_base_layout(const features::EncoderConfig& a,
                      const features::EncoderConfig& b) {
  return a.include_basic == b.include_basic &&
         a.include_delta == b.include_delta &&
         a.include_timeseries == b.include_timeseries &&
         a.include_customer == b.include_customer &&
         a.min_history_weeks == b.min_history_weeks &&
         a.no_ticket_days == b.no_ticket_days;
}

}  // namespace

TicketPredictor::TicketPredictor(PredictorConfig config)
    : config_(std::move(config)) {}

TicketPredictor::TicketPredictor(PredictorConfig config, ScoringKernel kernel)
    : config_(std::move(config)), kernel_(std::move(kernel)) {}

void TicketPredictor::train(const dslsim::SimDataset& data, int train_from,
                            int train_to) {
  if (train_to < train_from) {
    throw std::invalid_argument("TicketPredictor::train: empty week range");
  }
  const int n_weeks = train_to - train_from + 1;
  const int n_val = validation_weeks(n_weeks, config_.validation_fraction);
  const int sel_train_to = train_to - n_val;  // may equal train_from

  const features::TicketLabeler labeler{config_.horizon_days};

  // ---- stage 1: score base features on the validation split ----------
  features::EncoderConfig base_cfg = config_.encoder;
  base_cfg.include_quadratic = false;
  base_cfg.product_pairs.clear();

  ml::FeatureScoringConfig scoring;
  scoring.boost_iterations = config_.selection_boost_iterations;
  scoring.top_n = config_.top_n * static_cast<std::size_t>(n_val);
  scoring.exec = config_.exec;

  features::EncodedBlock base_block =
      features::encode_weeks(data, train_from, train_to, base_cfg, labeler);
  const auto train_rows = rows_in_weeks(base_block, train_from, sel_train_to);
  const auto val_rows = rows_in_weeks(base_block, sel_train_to + 1, train_to);
  const ml::DatasetView base_view(base_block.dataset);
  const ml::DatasetView sel_train = base_view.rows(train_rows);
  const ml::DatasetView sel_val = base_view.rows(val_rows);

  const std::vector<double> base_scores =
      ml::score_features(sel_train, sel_val, config_.selection, scoring);

  // Base features above the history/customer threshold. Baseline
  // methods (Fig 6) have no comparable absolute threshold; they take
  // the top-k directly.
  std::vector<std::size_t> base_selected = select_base(config_, base_scores);

  kernel_.encoder = base_cfg;
  if (config_.use_derived_features) {
    kernel_.encoder.include_quadratic = true;
    kernel_.encoder.product_pairs = pairs_from_scores(config_, base_scores);
    // One full encode shared by stage-2 derived scoring and the stage-3
    // final ensemble (formerly two identical encodes).
    const features::EncodedBlock full_block = features::encode_weeks(
        data, train_from, train_to, kernel_.encoder, labeler);
    finish_train(full_block, base_scores, std::move(base_selected), train_from,
                 train_to, n_val);
  } else {
    // No derived features: the base block already is the full block.
    finish_train(base_block, base_scores, std::move(base_selected), train_from,
                 train_to, n_val);
  }
}

void TicketPredictor::train_from_block(
    const features::EncodedBlock& block,
    const features::EncoderConfig& full_encoder) {
  const std::size_t n_rows = block.dataset.n_rows();
  if (n_rows == 0 || block.week_of_row.size() != n_rows) {
    throw std::invalid_argument(
        "TicketPredictor::train_from_block: empty or inconsistent block");
  }
  if (block.dataset.n_cols() != features::all_columns(full_encoder).size()) {
    throw std::invalid_argument(
        "TicketPredictor::train_from_block: column count disagrees with the "
        "encoder configuration");
  }
  features::EncoderConfig base_cfg = config_.encoder;
  base_cfg.include_quadratic = false;
  base_cfg.product_pairs.clear();
  if (!same_base_layout(base_cfg, full_encoder)) {
    throw std::invalid_argument(
        "TicketPredictor::train_from_block: dataset artefact was encoded "
        "under a different base feature configuration");
  }

  const auto [min_it, max_it] =
      std::minmax_element(block.week_of_row.begin(), block.week_of_row.end());
  const int train_from = *min_it;
  const int train_to = *max_it;
  const int n_val = validation_weeks(train_to - train_from + 1,
                                     config_.validation_fraction);
  const int sel_train_to = train_to - n_val;

  // ---- stage 1 on the base-column prefix of the stored matrix --------
  // Base columns are a prefix of the full layout with identical values,
  // and per-feature scoring is column-independent, so these scores
  // equal a fresh base-only encode's bit for bit.
  ml::FeatureScoringConfig scoring;
  scoring.boost_iterations = config_.selection_boost_iterations;
  scoring.top_n = config_.top_n * static_cast<std::size_t>(n_val);
  scoring.exec = config_.exec;

  const std::size_t n_base = features::base_columns(base_cfg).size();
  std::vector<std::size_t> base_cols(n_base);
  std::iota(base_cols.begin(), base_cols.end(), std::size_t{0});

  const ml::DatasetView full_view(block.dataset);
  const ml::DatasetView base_view = full_view.cols(base_cols);
  const ml::DatasetView sel_train =
      base_view.rows(rows_in_weeks(block, train_from, sel_train_to));
  const ml::DatasetView sel_val =
      base_view.rows(rows_in_weeks(block, sel_train_to + 1, train_to));

  const std::vector<double> base_scores =
      ml::score_features(sel_train, sel_val, config_.selection, scoring);
  std::vector<std::size_t> base_selected = select_base(config_, base_scores);

  // Recompute the derived layout stage 1 implies and require the
  // artefact to match — an artefact from a different predictor
  // configuration would otherwise silently train on the wrong columns.
  features::EncoderConfig expected = base_cfg;
  if (config_.use_derived_features) {
    expected.include_quadratic = true;
    expected.product_pairs = pairs_from_scores(config_, base_scores);
  }
  if (expected.include_quadratic != full_encoder.include_quadratic ||
      expected.product_pairs != full_encoder.product_pairs) {
    throw std::invalid_argument(
        "TicketPredictor::train_from_block: dataset artefact's derived "
        "features disagree with this predictor configuration");
  }
  kernel_.encoder = std::move(expected);
  finish_train(block, base_scores, std::move(base_selected), train_from,
               train_to, n_val);
}

features::EncoderConfig TicketPredictor::plan_full_encoder(
    const features::EncodedBlock& base_block) const {
  const std::size_t n_rows = base_block.dataset.n_rows();
  if (n_rows == 0 || base_block.week_of_row.size() != n_rows) {
    throw std::invalid_argument(
        "TicketPredictor::plan_full_encoder: empty or inconsistent block");
  }
  features::EncoderConfig base_cfg = config_.encoder;
  base_cfg.include_quadratic = false;
  base_cfg.product_pairs.clear();
  if (base_block.dataset.n_cols() != features::all_columns(base_cfg).size()) {
    throw std::invalid_argument(
        "TicketPredictor::plan_full_encoder: block is not a base-only "
        "encode of this predictor's feature configuration");
  }

  const auto [min_it, max_it] = std::minmax_element(
      base_block.week_of_row.begin(), base_block.week_of_row.end());
  const int train_from = *min_it;
  const int train_to = *max_it;
  const int n_val = validation_weeks(train_to - train_from + 1,
                                     config_.validation_fraction);
  const int sel_train_to = train_to - n_val;

  ml::FeatureScoringConfig scoring;
  scoring.boost_iterations = config_.selection_boost_iterations;
  scoring.top_n = config_.top_n * static_cast<std::size_t>(n_val);
  scoring.exec = config_.exec;

  const ml::DatasetView base_view(base_block.dataset);
  const ml::DatasetView sel_train =
      base_view.rows(rows_in_weeks(base_block, train_from, sel_train_to));
  const ml::DatasetView sel_val =
      base_view.rows(rows_in_weeks(base_block, sel_train_to + 1, train_to));
  const std::vector<double> base_scores =
      ml::score_features(sel_train, sel_val, config_.selection, scoring);

  features::EncoderConfig full = base_cfg;
  if (config_.use_derived_features) {
    full.include_quadratic = true;
    full.product_pairs = pairs_from_scores(config_, base_scores);
  }
  return full;
}

void TicketPredictor::finish_train(const features::EncodedBlock& full_block,
                                   const std::vector<double>& base_scores,
                                   std::vector<std::size_t> base_selected,
                                   int train_from, int train_to, int n_val) {
  const int sel_train_to = train_to - n_val;

  ml::FeatureScoringConfig scoring;
  scoring.boost_iterations = config_.selection_boost_iterations;
  scoring.top_n = config_.top_n * static_cast<std::size_t>(n_val);
  scoring.exec = config_.exec;

  const auto ftrain = rows_in_weeks(full_block, train_from, sel_train_to);
  const auto fval = rows_in_weeks(full_block, sel_train_to + 1, train_to);
  const ml::DatasetView full_view(full_block.dataset);

  // ---- stage 2: derived features over the strongest base features ----
  std::vector<double> full_scores = base_scores;
  if (config_.use_derived_features) {
    const ml::DatasetView dsel_train = full_view.rows(ftrain);
    const ml::DatasetView dsel_val = full_view.rows(fval);

    const std::size_t n_base = base_scores.size();
    const std::size_t n_all = full_block.dataset.n_cols();
    full_scores.resize(n_all, 0.0);
    const std::vector<double> all_scores = ml::score_features(
        dsel_train, dsel_val, config_.selection, scoring,
        config_.selection == ml::SelectionMethod::kTopNAp ? n_base : 0);
    for (std::size_t j = n_base; j < n_all; ++j) full_scores[j] = all_scores[j];

    const std::size_t n_quadratic = n_base;  // one square per base column
    kernel_.selected = std::move(base_selected);
    if (config_.selection == ml::SelectionMethod::kTopNAp) {
      for (std::size_t j = n_base; j < n_base + n_quadratic && j < n_all; ++j) {
        if (full_scores[j] > config_.quadratic_threshold) kernel_.selected.push_back(j);
      }
      // A product earns a slot only when it clearly beats BOTH of its
      // factors (the paper's rationale for the stricter threshold):
      // otherwise it is a redundant echo of a strong base feature.
      for (std::size_t j = n_base + n_quadratic; j < n_all; ++j) {
        const auto& pair =
            kernel_.encoder.product_pairs[j - n_base - n_quadratic];
        const double factor_best =
            std::max(base_scores[pair.first], base_scores[pair.second]);
        if (full_scores[j] > config_.product_threshold &&
            full_scores[j] > 1.2 * factor_best) {
          kernel_.selected.push_back(j);
        }
      }
    } else {
      for (std::size_t j = n_base; j < n_all; ++j) {
        if (all_scores[j] > 0.0) kernel_.selected.push_back(j);
      }
    }
  } else {
    kernel_.selected = std::move(base_selected);
  }

  // Cap the feature count, keeping the strongest.
  if (kernel_.selected.size() > config_.max_selected_features) {
    std::stable_sort(kernel_.selected.begin(), kernel_.selected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return full_scores[a] > full_scores[b];
                     });
    kernel_.selected.resize(config_.max_selected_features);
    std::sort(kernel_.selected.begin(), kernel_.selected.end());
  }

  // ---- stage 3: final ensemble on the selected columns ----------------
  const ml::DatasetView final_train =
      full_view.rows(ftrain).cols(kernel_.selected);
  const ml::DatasetView final_val = full_view.rows(fval).cols(kernel_.selected);

  kernel_.columns = final_train.columns_copy();

  ml::BStumpConfig boost;
  boost.iterations = config_.boost_iterations;
  boost.binning = config_.binning;
  boost.exec = config_.exec;
  if (config_.tune_boost_iterations) {
    const std::size_t base = std::max<std::size_t>(config_.boost_iterations, 4);
    const std::size_t candidates[] = {base / 4, base / 2, base, base * 2};
    const auto tuned = ml::select_boosting_rounds(
        final_train, candidates,
        config_.top_n * static_cast<std::size_t>(n_val), 3, config_.exec,
        boost);
    if (tuned.best_rounds > 0) boost.iterations = tuned.best_rounds;
  }
  kernel_.model = ml::train_bstump(final_train, boost);

  // Calibrate on the held-out split so probabilities are honest.
  const std::vector<double> val_scores =
      kernel_.model.score_dataset(final_val, config_.exec);
  std::vector<std::uint8_t> val_label_storage;
  kernel_.calibrator =
      ml::fit_platt(val_scores, final_val.labels(val_label_storage));
}

std::vector<double> TicketPredictor::score_block(
    const features::EncodedBlock& block) const {
  if (kernel_.model.empty()) {
    throw std::logic_error("TicketPredictor: predict before train");
  }
  return kernel_.score_block(block, config_.exec);
}

std::vector<Prediction> TicketPredictor::predict_week(
    const dslsim::SimDataset& data, int week) const {
  const features::TicketLabeler labeler{config_.horizon_days};
  const features::EncodedBlock block =
      features::encode_weeks(data, week, week, kernel_.encoder, labeler);
  const std::vector<double> scores = score_block(block);

  std::vector<Prediction> out(scores.size());
  config_.exec.parallel_for(
      0, scores.size(), 0, [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r) {
          out[r].line = block.line_of_row[r];
          out[r].score = scores[r];
          out[r].probability = kernel_.calibrator.probability(scores[r]);
        }
      });
  // Chunk-sorted then stably merged in chunk order — the unique stable
  // order, so the weekly ranking is byte-identical at any thread count.
  config_.exec.parallel_stable_sort(out.begin(), out.end(),
                                    [](const Prediction& a,
                                       const Prediction& b) {
                                      return a.score > b.score;
                                    });
  return out;
}

}  // namespace nevermind::core
