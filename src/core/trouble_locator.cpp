#include "core/trouble_locator.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>

#include "ml/serialization.hpp"
#include "util/mathx.hpp"

namespace nevermind::core {

const char* locator_model_name(LocatorModelKind k) noexcept {
  switch (k) {
    case LocatorModelKind::kExperience: return "experience";
    case LocatorModelKind::kFlat: return "flat";
    case LocatorModelKind::kCombined: return "combined";
  }
  return "?";
}

TroubleLocator::TroubleLocator(LocatorConfig config)
    : config_(std::move(config)) {}

void TroubleLocator::train(const dslsim::SimDataset& data, int week_from,
                           int week_to) {
  const features::LocatorBlock block =
      features::encode_at_dispatch(data, week_from, week_to, config_.encoder);
  train_from_block(data, block);
}

void TroubleLocator::train_from_block(const dslsim::SimDataset& data,
                                      const features::LocatorBlock& block) {
  const std::size_t n = block.dataset.n_rows();
  if (n == 0) throw std::invalid_argument("TroubleLocator: no dispatches");
  if (block.note_of_row.size() != n) {
    throw std::invalid_argument(
        "TroubleLocator::train_from_block: note mapping size mismatch");
  }
  if (block.dataset.n_cols() !=
      features::all_columns(config_.encoder).size()) {
    throw std::invalid_argument(
        "TroubleLocator::train_from_block: column count disagrees with the "
        "encoder configuration");
  }

  // Truth labels per row.
  std::vector<dslsim::DispositionId> truth(n);
  std::vector<dslsim::MajorLocation> truth_loc(n);
  std::map<dslsim::DispositionId, std::size_t> counts;
  for (std::size_t r = 0; r < n; ++r) {
    if (block.note_of_row[r] >= data.notes().size()) {
      throw std::invalid_argument(
          "TroubleLocator::train_from_block: note index out of range");
    }
    const auto& note = data.notes()[block.note_of_row[r]];
    truth[r] = note.disposition;
    truth_loc[r] = note.location;
    ++counts[note.disposition];
  }

  covered_.clear();
  for (const auto& [disp, count] : counts) {
    if (count >= config_.min_occurrences) covered_.push_back(disp);
  }

  ml::BStumpConfig boost;
  boost.iterations = config_.boost_iterations;
  boost.binning = config_.binning;
  const exec::ExecContext& exec = config_.exec;

  // One immutable feature matrix + per-matrix training cache (sorted
  // index or bin codes, built once under the shared pool) serve every
  // one-vs-rest problem below; tasks differ only in their label
  // vectors, so the old per-chunk Dataset copies are gone.
  boost.exec = exec::ExecContext::serial();
  ml::BStumpConfig cache_build = boost;
  cache_build.exec = exec;
  // A v2 artefact's stored quantization substitutes for re-binning when
  // it covers this exact matrix at the requested max_bins — the bins
  // were computed by the same deterministic quantizer at save time, so
  // training from them is byte-identical to binning here.
  ml::TrainCache cache;
  const std::size_t want_max_bins =
      std::min<std::size_t>(cache_build.binning_config.max_bins, 256);
  if (config_.binning == ml::BinningMode::kHistogram &&
      block.bins != nullptr && block.bins->n_rows() == n &&
      block.bins->n_cols() == block.dataset.n_cols() &&
      block.bins->max_bins() == want_max_bins) {
    cache.binned = block.bins;
  } else {
    cache = ml::make_train_cache(block.dataset, cache_build);
  }

  // ---- major-location classifiers f_Ci. -------------------------------
  // Each location problem builds its own label vector, trains against
  // the shared matrix, and writes its pre-assigned slot — so the 4 (and
  // below, 52) one-vs-rest problems run concurrently while staying
  // byte-identical to the serial loop.
  exec.parallel_for(
      0, dslsim::kNumMajorLocations, 1, [&](std::size_t lb, std::size_t le) {
        std::vector<std::uint8_t> labels(n);
        for (std::size_t loc = lb; loc < le; ++loc) {
          for (std::size_t r = 0; r < n; ++r) {
            labels[r] = truth_loc[r] == static_cast<dslsim::MajorLocation>(loc);
          }
          location_models_[loc] =
              ml::train_bstump_cached(block.dataset, cache, labels, {}, boost);
        }
      });

  // ---- per-disposition flat models + Eq. 2 stacking --------------------
  models_.clear();
  models_.resize(covered_.size());
  exec.parallel_for(
      0, covered_.size(), 1, [&](std::size_t db, std::size_t de) {
        std::vector<std::uint8_t> labels(n);
        for (std::size_t d = db; d < de; ++d) {
          const dslsim::DispositionId disp = covered_[d];
          ClassModel cm;
          cm.disposition = disp;
          cm.location = data.catalog().signature(disp).location;
          cm.prior =
              static_cast<double>(counts.at(disp)) / static_cast<double>(n);

          for (std::size_t r = 0; r < n; ++r) labels[r] = truth[r] == disp;
          cm.flat =
              ml::train_bstump_cached(block.dataset, cache, labels, {}, boost);

          const std::vector<double> flat_scores =
              cm.flat.score_dataset(block.dataset);
          cm.flat_cal = ml::fit_platt(flat_scores, labels);

          const auto loc = static_cast<std::size_t>(
              data.catalog().signature(disp).location);
          const std::vector<double> loc_scores =
              location_models_[loc].score_dataset(block.dataset);

          // Combined model: logistic regression of the truth on
          // [f_Cij(x), f_Ci.(x)] (Eq. 2's gamma coefficients).
          std::vector<double> covariates(n * 2);
          for (std::size_t r = 0; r < n; ++r) {
            covariates[r * 2] = flat_scores[r];
            covariates[r * 2 + 1] = loc_scores[r];
          }
          cm.combined = ml::fit_logistic(covariates, 2, labels, 1e-4);
          models_[d] = std::move(cm);
        }
      });
}

std::vector<RankedDisposition> TroubleLocator::rank(
    std::span<const float> features, LocatorModelKind kind) const {
  std::vector<RankedDisposition> out;
  out.reserve(models_.size());
  for (const auto& cm : models_) {
    RankedDisposition rd;
    rd.disposition = cm.disposition;
    switch (kind) {
      case LocatorModelKind::kExperience:
        rd.probability = cm.prior;
        break;
      case LocatorModelKind::kFlat:
        rd.probability =
            cm.flat_cal.probability(cm.flat.score_features(features));
        break;
      case LocatorModelKind::kCombined: {
        const double f_ij = cm.flat.score_features(features);
        // f_Ci. of the disposition's own major location.
        const double f_i =
            location_models_[static_cast<std::size_t>(cm.location)]
                .score_features(features);
        const double cov[2] = {f_ij, f_i};
        rd.probability = cm.combined.predict(cov);
        break;
      }
    }
    out.push_back(rd);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedDisposition& a, const RankedDisposition& b) {
                     return a.probability > b.probability;
                   });
  return out;
}

std::vector<TroubleLocator::RankedLocation> TroubleLocator::rank_locations(
    std::span<const float> features) const {
  std::vector<RankedLocation> out;
  out.reserve(dslsim::kNumMajorLocations);
  double max_score = -std::numeric_limits<double>::infinity();
  std::array<double, dslsim::kNumMajorLocations> scores{};
  for (std::size_t loc = 0; loc < dslsim::kNumMajorLocations; ++loc) {
    scores[loc] = location_models_[loc].score_features(features);
    max_score = std::max(max_score, scores[loc]);
  }
  double total = 0.0;
  for (std::size_t loc = 0; loc < dslsim::kNumMajorLocations; ++loc) {
    scores[loc] = std::exp(scores[loc] - max_score);
    total += scores[loc];
  }
  for (std::size_t loc = 0; loc < dslsim::kNumMajorLocations; ++loc) {
    out.push_back({static_cast<dslsim::MajorLocation>(loc),
                   total > 0.0 ? scores[loc] / total : 0.25});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedLocation& a, const RankedLocation& b) {
                     return a.probability > b.probability;
                   });
  return out;
}

const ml::BStumpModel* TroubleLocator::flat_model(
    dslsim::DispositionId disposition) const {
  for (const auto& cm : models_) {
    if (cm.disposition == disposition) return &cm.flat;
  }
  return nullptr;
}

std::size_t TroubleLocator::rank_of(std::span<const float> features,
                                    dslsim::DispositionId truth,
                                    LocatorModelKind kind) const {
  const auto ranking = rank(features, kind);
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].disposition == truth) return i + 1;
  }
  return ranking.size() + 1;
}

void TroubleLocator::save(std::ostream& os) const {
  os << "nmlocator v1\n";
  features::save_encoder_config(os, config_.encoder);
  os << "models " << models_.size() << '\n';
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& cm : models_) {
    os << "model " << cm.disposition << ' '
       << static_cast<int>(cm.location) << ' ' << cm.prior << '\n';
    ml::save_model(os, cm.flat);
    ml::save_calibrator(os, cm.flat_cal);
    ml::save_logistic(os, cm.combined);
  }
  os << "locations " << location_models_.size() << '\n';
  for (const auto& model : location_models_) ml::save_model(os, model);
}

std::optional<TroubleLocator> TroubleLocator::load(std::istream& is,
                                                   std::string* error) {
  const auto fail = [&](const std::string& message)
      -> std::optional<TroubleLocator> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != "nmlocator") {
    return fail("not a locator artefact (missing 'nmlocator' magic)");
  }
  if (version != "v1") {
    return fail("unsupported locator version '" + version +
                "' (this build reads v1)");
  }
  auto encoder = features::load_encoder_config(is);
  if (!encoder.has_value()) {
    return fail("malformed encoder configuration block");
  }

  LocatorConfig config;
  config.encoder = std::move(*encoder);
  TroubleLocator locator(config);

  std::string tag;
  std::size_t n_models = 0;
  if (!(is >> tag >> n_models) || tag != "models") {
    return fail("malformed model list header");
  }
  locator.models_.reserve(n_models);
  for (std::size_t i = 0; i < n_models; ++i) {
    ClassModel cm;
    int location = 0;
    if (!(is >> tag >> cm.disposition >> location >> cm.prior) ||
        tag != "model" || location < 0 ||
        location >= static_cast<int>(dslsim::kNumMajorLocations)) {
      return fail("malformed per-disposition model header");
    }
    cm.location = static_cast<dslsim::MajorLocation>(location);
    auto flat = ml::load_model(is);
    if (!flat.has_value()) return fail("malformed flat ensemble block");
    cm.flat = std::move(*flat);
    auto cal = ml::load_calibrator(is);
    if (!cal.has_value()) return fail("malformed flat calibrator block");
    cm.flat_cal = *cal;
    auto combined = ml::load_logistic(is);
    if (!combined.has_value()) return fail("malformed Eq.2 logistic block");
    cm.combined = std::move(*combined);
    locator.models_.push_back(std::move(cm));
  }
  locator.covered_.reserve(n_models);
  for (const auto& cm : locator.models_) {
    locator.covered_.push_back(cm.disposition);
  }

  std::size_t n_locations = 0;
  if (!(is >> tag >> n_locations) || tag != "locations" ||
      n_locations != locator.location_models_.size()) {
    return fail("malformed location model list");
  }
  for (auto& model : locator.location_models_) {
    auto loaded = ml::load_model(is);
    if (!loaded.has_value()) return fail("malformed location ensemble block");
    model = std::move(*loaded);
  }
  return locator;
}

}  // namespace nevermind::core
