// ATDS — the Automatic Testing and Dispatching System NEVERMIND plugs
// into (paper Fig 3). Customer-reported tickets get absolute priority;
// the *remaining* weekly capacity absorbs NEVERMIND's predicted
// tickets, bounded by the top-N budget. This module simulates that
// workflow for a prediction batch and scores its operational outcome
// against the simulator's ground truth: how many predicted lines really
// had live problems, how many future tickets were headed off (fixed
// before the customer called), and how much dispatch time the trouble
// locator saved.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "dslsim/simulator.hpp"

namespace nevermind::core {

struct AtdsConfig {
  /// Weekly capacity for predicted tickets (the paper's 20K, scaled).
  std::size_t weekly_capacity = 200;
  /// Days after the Saturday prediction by which proactive dispatches
  /// complete (paper Fig 8: fixing by Monday misses at most 15%).
  int days_to_fix = 2;
  /// Minutes to test one candidate location during a dispatch.
  double minutes_per_test = 18.0;
  /// Fixed dispatch overhead (drive + setup), minutes.
  double dispatch_overhead_minutes = 45.0;
};

/// Outcome of pushing one week's predictions through ATDS.
struct AtdsWeekReport {
  int week = 0;
  std::size_t submitted = 0;         // predictions accepted (<= capacity)
  std::size_t with_live_fault = 0;   // ground truth: a fault was active
  std::size_t tickets_prevented = 0; // fixed before the customer called
  std::size_t silent_fixed = 0;      // live fault fixed that would never
                                     // have been reported (§5.2 cases)
  std::size_t would_ticket = 0;      // predicted lines whose customers
                                     // would have called within 4 weeks
  std::size_t clean_dispatches = 0;  // nothing found (wasted truck roll)
  double locator_minutes = 0.0;      // dispatch time with the locator
  double experience_minutes = 0.0;   // dispatch time with prior ranking
};

/// Simulate a proactive week: take the top predictions at `week`,
/// dispatch within config.days_to_fix days, use the locator to order
/// tests, and account outcomes against ground truth. Pure function of
/// the dataset — it does not mutate the simulation.
[[nodiscard]] AtdsWeekReport run_proactive_week(
    const dslsim::SimDataset& data, const std::vector<Prediction>& ranked,
    const TroubleLocator& locator, const AtdsConfig& config, int week,
    int horizon_days = 28);

}  // namespace nevermind::core
