// The trouble locator (paper Section 6): before a dispatch, rank the
// possible problem dispositions so the technician tests the most likely
// locations first.
//
// Three models, matching the paper's comparison:
//   * experience — the simple prior: rank dispositions by how often
//     they were the cause in the past (Section 6.1).
//   * flat — a one-vs-rest BStump + Platt calibration per disposition
//     C_ij; rank by P(C_ij | x) (Section 6.2).
//   * combined — Eq. 2: stack f_Cij with its parent major-location
//     classifier f_Ci. through a logistic regression, exploiting the
//     HN/F1/DS/F2 hierarchy; helps rare dispositions most.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "features/encoder.hpp"
#include "ml/adaboost.hpp"
#include "ml/calibration.hpp"
#include "ml/logreg.hpp"

namespace nevermind::core {

enum class LocatorModelKind : std::uint8_t {
  kExperience = 0,
  kFlat,
  kCombined,
};

[[nodiscard]] const char* locator_model_name(LocatorModelKind k) noexcept;

struct LocatorConfig {
  features::EncoderConfig encoder;  // paper: all Table-3 features
  /// Boosting rounds (paper: 200 by cross-validation).
  std::size_t boost_iterations = 200;
  /// Dispositions must appear at least this often in training to get a
  /// model (paper: 52 dispositions with > 20 occurrences = 81.9%).
  std::size_t min_occurrences = 20;
  /// Split-search path for every one-vs-rest ensemble. kHistogram
  /// quantizes the dispatch feature matrix once and shares the bin
  /// codes across all 52 disposition + 4 location trainings.
  ml::BinningMode binning = ml::BinningMode::kExact;
  /// Execution context: the 52 one-vs-rest disposition problems (and
  /// the 4 major-location classifiers) train independently against one
  /// shared feature matrix, each with its own label vector. Models are
  /// byte-identical at every thread count.
  exec::ExecContext exec;
};

struct RankedDisposition {
  dslsim::DispositionId disposition = 0;
  double probability = 0.0;
};

class TroubleLocator {
 public:
  explicit TroubleLocator(LocatorConfig config);

  /// Train on all disposition notes whose dispatch falls in measurement
  /// weeks [week_from, week_to].
  void train(const dslsim::SimDataset& data, int week_from, int week_to);

  /// Train from a pre-encoded dispatch block — a persisted dataset
  /// artefact loaded eagerly or mmap'ed (see features/dataset_io.hpp).
  /// `data` still supplies the disposition notes and catalogue behind
  /// block.note_of_row; the block's columns must match this locator's
  /// encoder configuration. Throws std::invalid_argument on layout or
  /// note-index mismatches.
  void train_from_block(const dslsim::SimDataset& data,
                        const features::LocatorBlock& block);

  /// Dispositions covered by trained models (>= min_occurrences).
  [[nodiscard]] std::span<const dslsim::DispositionId> covered() const {
    return covered_;
  }

  /// Rank covered dispositions for one encoded feature row, most
  /// likely first.
  [[nodiscard]] std::vector<RankedDisposition> rank(
      std::span<const float> features, LocatorModelKind kind) const;

  struct RankedLocation {
    dslsim::MajorLocation location = dslsim::MajorLocation::kHomeNetwork;
    double probability = 0.0;
  };

  /// Rank the four major locations by the f_Ci. classifiers — the
  /// technician's first decision ("if the technician has enough
  /// evidence to believe a problem happens at DS, she can save time by
  /// skipping testing the other three locations", §2.2). Calibrated to
  /// probabilities by a softmax over the location ensemble scores.
  [[nodiscard]] std::vector<RankedLocation> rank_locations(
      std::span<const float> features) const;

  /// 1-based rank of `truth` under the model (the number of locations a
  /// technician tests before finding the problem). Returns covered()
  /// size + 1 when the disposition is not covered.
  [[nodiscard]] std::size_t rank_of(std::span<const float> features,
                                    dslsim::DispositionId truth,
                                    LocatorModelKind kind) const;

  [[nodiscard]] const features::EncoderConfig& encoder_config() const {
    return config_.encoder;
  }
  [[nodiscard]] bool trained() const { return !covered_.empty(); }

  /// Versioned text artefact ("nmlocator v1", built on ml/serialization):
  /// the encoder layout, per-disposition priors / flat ensembles /
  /// calibrators / Eq.2 coefficients, and the four major-location
  /// classifiers. Disposition ids are those of the training catalogue;
  /// a loaded locator must be served against the same catalogue.
  void save(std::ostream& os) const;
  [[nodiscard]] static std::optional<TroubleLocator> load(
      std::istream& is, std::string* error = nullptr);

  /// The flat ensemble f_Cij for a covered disposition (nullptr when
  /// not covered) — exposed for Fig-9 style explanations.
  [[nodiscard]] const ml::BStumpModel* flat_model(
      dslsim::DispositionId disposition) const;
  /// The major-location ensemble f_Ci. .
  [[nodiscard]] const ml::BStumpModel& location_model(
      dslsim::MajorLocation loc) const {
    return location_models_[static_cast<std::size_t>(loc)];
  }

 private:
  struct ClassModel {
    dslsim::DispositionId disposition = 0;
    dslsim::MajorLocation location = dslsim::MajorLocation::kHomeNetwork;
    double prior = 0.0;  // experience model: empirical frequency
    ml::BStumpModel flat;
    ml::PlattCalibrator flat_cal;
    /// Eq. 2 coefficients: intercept, gamma1 (f_Cij), gamma2 (f_Ci.).
    ml::LogisticModel combined;
  };

  LocatorConfig config_;
  std::vector<dslsim::DispositionId> covered_;
  std::vector<ClassModel> models_;
  /// Major-location classifiers f_Ci. indexed by MajorLocation.
  std::array<ml::BStumpModel, dslsim::kNumMajorLocations> location_models_;
};

}  // namespace nevermind::core
