// The ticket predictor (paper Section 4): ranks every DSL line by the
// probability that its customer opens a trouble ticket within T = 4
// weeks, so the top-N can be submitted to ATDS and fixed proactively.
//
// Pipeline: encode Table-3 features -> top-N-AP feature selection
// (thresholds read off the Fig-4 bimodal histograms, with a stricter
// bar for product features) -> BStump ensemble -> Platt calibration ->
// weekly ranking.
#pragma once

#include <cstddef>
#include <vector>

#include "core/scoring_kernel.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "features/encoder.hpp"
#include "ml/adaboost.hpp"
#include "ml/calibration.hpp"
#include "ml/feature_selection.hpp"

namespace nevermind::core {

struct PredictorConfig {
  /// Base feature families (derived features are controlled below).
  features::EncoderConfig encoder;
  /// Add quadratic and product derived features (Fig 7's "all selected
  /// features" curve vs the dotted history+customer curve).
  bool use_derived_features = true;
  /// Boosting rounds of the final ensemble (paper: 800).
  std::size_t boost_iterations = 300;
  /// When true, pick the boosting rounds by cross-validation on the
  /// training split (the paper's procedure: "the number of iterations
  /// is set to 800 based on cross-validation"), choosing among
  /// {1/4, 1/2, 1, 2} x boost_iterations.
  bool tune_boost_iterations = false;
  /// Boosting rounds of the per-feature selection predictors.
  std::size_t selection_boost_iterations = 12;
  /// Weekly prediction budget N — ATDS capacity (paper: 20,000 of
  /// millions of lines; keep the same ~1% ratio at simulation scale).
  std::size_t top_n = 200;
  /// Feature-selection criterion (Fig 6 swaps this out).
  ml::SelectionMethod selection = ml::SelectionMethod::kTopNAp;
  /// AP thresholds read off the bimodal histograms of Fig 4. The paper
  /// uses 0.2 / 0.2 / 0.3 on its data; our simulated AP(N) scale is
  /// compressed (~2.5x), so the defaults sit at the same bimodal gap of
  /// our histograms (see bench_fig4_feature_ap). The product threshold
  /// stays well above the base one for the paper's reason: a product
  /// must beat both of its factors to earn a slot.
  double history_threshold = 0.05;
  double quadratic_threshold = 0.055;
  double product_threshold = 0.15;
  /// Product features pair the strongest `product_pool` base features.
  std::size_t product_pool = 28;
  /// Hard cap on the selected feature count (a scalability guard; the
  /// Fig 6 baseline comparison fixes 50 separately).
  std::size_t max_selected_features = 100;
  /// Prediction horizon T (paper: 4 weeks).
  int horizon_days = 28;
  /// Split-search path of the final ensemble (and of the CV rounds
  /// tuning, which then bins once and folds by row subset). kExact is
  /// the default and byte-identical to the pre-binning pipeline.
  ml::BinningMode binning = ml::BinningMode::kExact;
  /// Fraction of training weeks reserved as the selection/calibration
  /// validation split.
  double validation_fraction = 0.3;
  /// Execution context for training (per-feature selection, boosting)
  /// and weekly scoring/ranking. Predictions and models are
  /// byte-identical at every thread count; the default serial context
  /// is the exact single-threaded path.
  exec::ExecContext exec;
};

struct Prediction {
  dslsim::LineId line = 0;
  double score = 0.0;        // raw BStump margin
  double probability = 0.0;  // calibrated P(Tkt(u) | x)
};

class TicketPredictor {
 public:
  explicit TicketPredictor(PredictorConfig config);

  /// Wrap an already-trained kernel (e.g. loaded from a saved model
  /// artefact) — predict_week/score_block work immediately, no train().
  TicketPredictor(PredictorConfig config, ScoringKernel kernel);

  /// Train on measurement weeks [train_from, train_to] (inclusive).
  /// The last `validation_fraction` of those weeks drive feature
  /// selection scoring and Platt calibration.
  void train(const dslsim::SimDataset& data, int train_from, int train_to);

  /// Train from a pre-encoded full-featured block — a persisted dataset
  /// artefact loaded eagerly or mmap'ed (see features/dataset_io.hpp) —
  /// without touching the simulator. `full_encoder` must be the
  /// configuration the block was encoded with (the artefact records
  /// it); the training week range is taken from block.week_of_row.
  ///
  /// Produces a kernel byte-identical to train() over the same weeks:
  /// stage-1 selection runs on the base-column prefix of the stored
  /// matrix (per-feature scoring is column-independent, so prefix views
  /// equal a fresh base-only encode), and the derived layout stage 1
  /// implies is recomputed and checked against `full_encoder` — a
  /// mismatch (artefact from a different predictor configuration)
  /// throws std::invalid_argument rather than training on the wrong
  /// columns.
  void train_from_block(const features::EncodedBlock& block,
                        const features::EncoderConfig& full_encoder);

  /// Stage-1 planning for externally encoded pipelines: run base
  /// feature selection over `base_block` (which must be encoded under
  /// this predictor's encoder with derived features disabled — the
  /// training week range is taken from block.week_of_row) and return
  /// the full encoder configuration train() would derive from it. A
  /// streamed pipeline encodes its training artefact with this
  /// configuration and train_from_block then accepts it; because the
  /// scoring is column-independent, the plan equals what
  /// train_from_block recomputes from the full matrix's base prefix,
  /// bit for bit. Throws std::invalid_argument on an empty block or a
  /// column layout that is not this predictor's base layout.
  [[nodiscard]] features::EncoderConfig plan_full_encoder(
      const features::EncodedBlock& base_block) const;

  /// Rank all lines at the given test week, best first.
  [[nodiscard]] std::vector<Prediction> predict_week(
      const dslsim::SimDataset& data, int week) const;

  /// Scores for an externally encoded block (columns must match the
  /// encoder config returned by full_encoder_config()).
  [[nodiscard]] std::vector<double> score_block(
      const features::EncodedBlock& block) const;

  /// The deployable scoring artefact: encoder layout, selected columns,
  /// ensemble, calibrator. Serve-side model registries publish this.
  [[nodiscard]] const ScoringKernel& kernel() const { return kernel_; }

  /// Encoder configuration including the derived features the model
  /// was trained with; benches encode test blocks with this.
  [[nodiscard]] const features::EncoderConfig& full_encoder_config() const {
    return kernel_.encoder;
  }
  [[nodiscard]] const std::vector<std::size_t>& selected_features() const {
    return kernel_.selected;
  }
  [[nodiscard]] const std::vector<ml::ColumnInfo>& selected_columns() const {
    return kernel_.columns;
  }
  [[nodiscard]] const ml::BStumpModel& model() const { return kernel_.model; }
  [[nodiscard]] bool trained() const { return kernel_.trained(); }
  [[nodiscard]] const PredictorConfig& config() const { return config_; }

 private:
  /// Stages 2+3 over one full-featured block shared by the derived-
  /// feature scoring and the final ensemble: derived selection, column
  /// cap, BStump training and Platt calibration.
  void finish_train(const features::EncodedBlock& full_block,
                    const std::vector<double>& base_scores,
                    std::vector<std::size_t> base_selected, int train_from,
                    int train_to, int n_val);

  PredictorConfig config_;
  ScoringKernel kernel_;
};

}  // namespace nevermind::core
