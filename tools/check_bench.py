#!/usr/bin/env python3
"""Compare two NEVERMIND benchmark JSON files for timing regressions.

Every bench binary that measures wall-clock time (bench_perf_pipeline,
bench_train, bench_serve, bench_net, bench_cluster, bench_scale) writes a
BENCH_*.json with metric fields named by convention: names ending in ``_s`` are timings in
seconds and names ending in ``_ms`` are timings in milliseconds (both
lower is better; ``_ms`` values are converted to seconds so --min-time
applies uniformly), names ending in ``_per_s`` are throughputs (higher
is better), names ending in ``_bytes`` are memory footprints
(lower is better, no minimum floor — bytes do not jitter the way a
5 ms timing does), names ending in ``_weeks`` are detection latencies
in whole weeks (lower is better, no minimum floor; ratios are computed
on value+1 so a perfect zero-week lag neither divides by zero nor
flags an infinite regression when it slips to one week — e.g.
bench_drift's ``detection_lag_weeks``), and names ending in
``speedup`` are dimensionless
ratios of a reference time over an optimized time (higher is better —
e.g. bench_train's ``simd_stump_speedup``, scalar over AVX2). This
tool diffs a baseline file against a candidate file (or two
directories of BENCH_*.json files, matched by name) and fails when any
timing slowed down — or any throughput or speedup dropped, or any
memory footprint grew — by more than the threshold (default 20%).

A missing baseline is not an error: the first run on a fresh checkout
(or a brand-new bench) has nothing to compare against, so the tool
warns and reports success instead of crashing.

Timings below a minimum (default 0.05 s) are skipped: at smoke sizes a
scheduler hiccup easily doubles a 5 ms measurement, and such fields say
nothing about real throughput. Throughput fields have no such floor
(they are already normalized per second of measured work), but
non-positive values are skipped as unmeasured.

Usage:
    check_bench.py BASELINE.json CANDIDATE.json [--threshold 0.2]
    check_bench.py baseline_dir/ candidate_dir/  [--min-time 0.05]
    check_bench.py --self-test

Exit status: 0 = no regression, 1 = regression found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def metric_fields(obj, prefix=""):
    """Yield (dotted_path, kind, value) for every metric field.

    kind is "throughput" for numeric fields ending in _per_s (higher is
    better), "speedup" for numeric fields ending in speedup (higher is
    better, dimensionless, no --min-time floor), "memory" for numeric
    fields ending in _bytes (lower is better, no --min-time floor),
    "weeks" for numeric fields ending in _weeks (lower is better, no
    --min-time floor, compared on value+1 so zero-week lags work),
    and "time" for other numeric fields ending in _s or _ms (lower is
    better; _ms values come back in seconds so thresholds and
    --min-time apply uniformly). The _per_s check runs first — a
    _per_s name also ends in _s, and classifying it as a timing would
    invert the comparison.

    Lists are keyed by a stable attribute when the elements carry one
    (the benches key runs by "threads"; bench_scale keys its runs by
    "lines") and by index otherwise, so the same run matches across
    files even if ordering changed.
    """
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            path = f"{prefix}.{key}" if prefix else key
            if key.endswith("_per_s") and isinstance(value, (int, float)):
                yield path, "throughput", float(value)
            elif key.endswith("speedup") and isinstance(value, (int, float)):
                yield path, "speedup", float(value)
            elif key.endswith("_bytes") and isinstance(value, (int, float)):
                yield path, "memory", float(value)
            elif key.endswith("_weeks") and isinstance(value, (int, float)):
                yield path, "weeks", float(value)
            elif key.endswith("_ms") and isinstance(value, (int, float)):
                yield path, "time", float(value) / 1000.0
            elif key.endswith("_s") and isinstance(value, (int, float)):
                yield path, "time", float(value)
            else:
                yield from metric_fields(value, path)
    elif isinstance(obj, list):
        for i, item in enumerate(obj):
            label = i
            if isinstance(item, dict) and "threads" in item:
                label = f"threads={item['threads']}"
            elif isinstance(item, dict) and "lines" in item:
                label = f"lines={item['lines']}"
            yield from metric_fields(item, f"{prefix}[{label}]")


def compare(baseline, candidate, threshold, min_time):
    """Return a list of human-readable regression messages."""
    base = {path: (kind, v) for path, kind, v in metric_fields(baseline)}
    cand = {path: (kind, v) for path, kind, v in metric_fields(candidate)}
    regressions = []
    for path, (kind, base_value) in sorted(base.items()):
        if path not in cand:
            continue  # field removed or renamed; not a perf signal
        cand_kind, cand_value = cand[path]
        if cand_kind != kind:
            continue
        if kind == "time":
            if base_value < min_time or cand_value < min_time:
                continue
            ratio = cand_value / base_value
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"{path}: {base_value:.3f}s -> {cand_value:.3f}s "
                    f"(+{(ratio - 1.0) * 100.0:.0f}%)"
                )
        elif kind == "memory":  # growth is the regression, no time floor
            if base_value <= 0.0 or cand_value <= 0.0:
                continue  # unmeasured (e.g. memprobe disabled)
            ratio = cand_value / base_value
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"{path}: {base_value:.0f}B -> {cand_value:.0f}B "
                    f"(+{(ratio - 1.0) * 100.0:.0f}%)"
                )
        elif kind == "weeks":  # detection lag: growth regresses, +1 basis
            if base_value < 0.0 or cand_value < 0.0:
                continue  # -1 means the detector never fired: unmeasured
            ratio = (cand_value + 1.0) / (base_value + 1.0)
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"{path}: {base_value:.0f}wk -> {cand_value:.0f}wk "
                    f"(+{(ratio - 1.0) * 100.0:.0f}%)"
                )
        elif kind == "speedup":  # dimensionless ratio: a drop regresses
            if base_value <= 0.0 or cand_value <= 0.0:
                continue  # unmeasured (e.g. no AVX2 on the host)
            ratio = cand_value / base_value
            if ratio < 1.0 - threshold:
                regressions.append(
                    f"{path}: {base_value:.2f}x -> {cand_value:.2f}x "
                    f"(-{(1.0 - ratio) * 100.0:.0f}%)"
                )
        else:  # throughput: a drop is the regression
            if base_value <= 0.0 or cand_value <= 0.0:
                continue
            ratio = cand_value / base_value
            if ratio < 1.0 - threshold:
                regressions.append(
                    f"{path}: {base_value:.1f}/s -> {cand_value:.1f}/s "
                    f"(-{(1.0 - ratio) * 100.0:.0f}%)"
                )
    return regressions


def compare_files(base_path, cand_path, threshold, min_time):
    # No baseline yet (first run, or a bench that just grew its first
    # JSON): nothing to regress against — warn and pass.
    if not Path(base_path).exists():
        print(f"warning: no baseline at {base_path}; nothing to compare",
              file=sys.stderr)
        return []
    with open(base_path) as f:
        baseline = json.load(f)
    with open(cand_path) as f:
        candidate = json.load(f)
    return compare(baseline, candidate, threshold, min_time)


def compare_dirs(base_dir, cand_dir, threshold, min_time):
    regressions = []
    matched = 0
    for base_path in sorted(base_dir.glob("BENCH_*.json")):
        cand_path = cand_dir / base_path.name
        if not cand_path.exists():
            continue
        matched += 1
        for msg in compare_files(base_path, cand_path, threshold, min_time):
            regressions.append(f"{base_path.name}: {msg}")
    if matched == 0:
        print("warning: no matching BENCH_*.json pairs found", file=sys.stderr)
    return regressions


def self_test():
    baseline = {
        "bench": "train",
        "runs": [
            {"threads": 1, "exact_train_s": 10.0, "hist_train_s": 2.0},
            {"threads": 2, "exact_train_s": 6.0, "hist_train_s": 1.2},
        ],
        "encode_s": 0.5,
        "tiny_s": 0.001,
    }
    # Unchanged candidate: no regressions.
    assert compare(baseline, baseline, 0.2, 0.05) == []
    # 50% slower histogram training at 1 thread: flagged.
    slow = json.loads(json.dumps(baseline))
    slow["runs"][0]["hist_train_s"] = 3.0
    msgs = compare(baseline, slow, 0.2, 0.05)
    assert len(msgs) == 1 and "hist_train_s" in msgs[0], msgs
    # Same run found even when the list order flips.
    flipped = json.loads(json.dumps(slow))
    flipped["runs"].reverse()
    assert compare(baseline, flipped, 0.2, 0.05) == msgs
    # Sub-min-time jitter is ignored no matter how large relatively.
    jitter = json.loads(json.dumps(baseline))
    jitter["tiny_s"] = 0.04
    assert compare(baseline, jitter, 0.2, 0.05) == []
    # Improvements are never flagged.
    fast = json.loads(json.dumps(baseline))
    fast["runs"][0]["exact_train_s"] = 1.0
    assert compare(baseline, fast, 0.2, 0.05) == []

    # --- higher-is-better throughput fields (_per_s) -----------------
    serve = {
        "bench": "serve",
        "ingest_rows_per_s": 100000.0,
        "query_per_s": 5000.0,
        "p99_latency_s": 0.2,
        "runs": [{"threads": 1, "query_per_s": 4000.0}],
    }
    # Unchanged: clean.
    assert compare(serve, serve, 0.2, 0.05) == []
    # A 50% throughput DROP is a regression (direction inverted vs _s).
    dropped = json.loads(json.dumps(serve))
    dropped["ingest_rows_per_s"] = 50000.0
    msgs = compare(serve, dropped, 0.2, 0.05)
    assert len(msgs) == 1 and "ingest_rows_per_s" in msgs[0], msgs
    # A throughput INCREASE is never flagged...
    faster = json.loads(json.dumps(serve))
    faster["query_per_s"] = 20000.0
    faster["runs"][0]["query_per_s"] = 16000.0
    assert compare(serve, faster, 0.2, 0.05) == []
    # ...even though the same ratio as a timing would be a regression.
    slower_time = json.loads(json.dumps(serve))
    slower_time["p99_latency_s"] = 0.8
    msgs = compare(serve, slower_time, 0.2, 0.05)
    assert len(msgs) == 1 and "p99_latency_s" in msgs[0], msgs
    # Nested throughput fields are found and direction-checked too.
    nested_drop = json.loads(json.dumps(serve))
    nested_drop["runs"][0]["query_per_s"] = 1000.0
    msgs = compare(serve, nested_drop, 0.2, 0.05)
    assert len(msgs) == 1 and "threads=1" in msgs[0], msgs
    # Unmeasured (zero) throughputs are skipped, not divided by.
    zero = json.loads(json.dumps(serve))
    zero["query_per_s"] = 0.0
    assert compare(zero, serve, 0.2, 0.05) == []
    assert compare(serve, zero, 0.2, 0.05) == []

    # --- millisecond timing fields (_ms, lower is better) ------------
    net = {
        "bench": "net",
        "score_per_s": 20000.0,
        "score_p99_ms": 400.0,
        "ping_p50_ms": 60.0,
    }
    # Unchanged: clean.
    assert compare(net, net, 0.2, 0.05) == []
    # A latency INCREASE is a regression, same direction as _s fields.
    slower_ms = json.loads(json.dumps(net))
    slower_ms["score_p99_ms"] = 800.0
    msgs = compare(net, slower_ms, 0.2, 0.05)
    assert len(msgs) == 1 and "score_p99_ms" in msgs[0], msgs
    # A latency improvement is never flagged.
    faster_ms = json.loads(json.dumps(net))
    faster_ms["score_p99_ms"] = 100.0
    faster_ms["ping_p50_ms"] = 55.0
    assert compare(net, faster_ms, 0.2, 0.05) == []
    # _ms values are compared in seconds: 60 ms sits above a 50 ms
    # floor (flagged when doubled) but ducks under a 100 ms floor.
    doubled_ping = json.loads(json.dumps(net))
    doubled_ping["ping_p50_ms"] = 120.0
    msgs = compare(net, doubled_ping, 0.2, 0.05)
    assert len(msgs) == 1 and "ping_p50_ms" in msgs[0], msgs
    assert compare(net, doubled_ping, 0.2, 0.1) == []

    # --- memory fields (_bytes, lower is better, no time floor) ------
    mem = {
        "bench": "train",
        "dataplane": {
            "view_alloc_bytes": 9000000,
            "view_peak_rss_bytes": 200000,
            "copy_peak_rss_bytes": 1000000,
        },
    }
    # Unchanged: clean.
    assert compare(mem, mem, 0.2, 0.05) == []
    # A 50% allocation-bytes GROWTH is a regression.
    grown = json.loads(json.dumps(mem))
    grown["dataplane"]["view_alloc_bytes"] = 13500000
    msgs = compare(mem, grown, 0.2, 0.05)
    assert len(msgs) == 1 and "view_alloc_bytes" in msgs[0], msgs
    # Shrinking memory is an improvement, never flagged.
    shrunk = json.loads(json.dumps(mem))
    shrunk["dataplane"]["view_peak_rss_bytes"] = 50000
    assert compare(mem, shrunk, 0.2, 0.05) == []
    # The --min-time floor does NOT apply: a small-but-real byte count
    # doubling is still flagged (0.05 would hide any timing this size).
    small = json.loads(json.dumps(mem))
    small["dataplane"]["view_peak_rss_bytes"] = 400000
    msgs = compare(mem, small, 0.2, 0.05)
    assert len(msgs) == 1 and "view_peak_rss_bytes" in msgs[0], msgs
    # Zero (unmeasured, e.g. /proc absent) is skipped in either slot.
    zero_mem = json.loads(json.dumps(mem))
    zero_mem["dataplane"]["copy_peak_rss_bytes"] = 0
    assert compare(zero_mem, mem, 0.2, 0.05) == []
    assert compare(mem, zero_mem, 0.2, 0.05) == []

    # --- bench_train "store" section (nmarena feature store) ---------
    # Mixed conventions in one section: write throughput (_per_s,
    # higher is better), load timings (_s), file size and phase peak
    # RSS (_bytes); the peak_rss_approx marker is a bool, not a metric.
    store = {
        "bench": "train",
        "store": {
            "rows": 5000,
            "cols": 120,
            "file_bytes": 2400000,
            "encode_write_s": 1.5,
            "write_rows_per_s": 3300.0,
            "eager_load_s": 0.4,
            "mmap_load_s": 0.01,
            "eager_peak_rss_bytes": 2500000,
            "mmap_peak_rss_bytes": 300000,
            "peak_rss_approx": True,
        },
    }
    # Unchanged: clean (bools and count fields are not metrics).
    assert compare(store, store, 0.2, 0.05) == []
    # A write-throughput drop is a regression.
    slow_write = json.loads(json.dumps(store))
    slow_write["store"]["write_rows_per_s"] = 2000.0
    msgs = compare(store, slow_write, 0.2, 0.05)
    assert len(msgs) == 1 and "write_rows_per_s" in msgs[0], msgs
    # A slower eager load is a regression; the artefact growing is too.
    slow_load = json.loads(json.dumps(store))
    slow_load["store"]["eager_load_s"] = 0.8
    slow_load["store"]["file_bytes"] = 4000000
    msgs = compare(store, slow_load, 0.2, 0.05)
    assert len(msgs) == 2, msgs
    assert any("eager_load_s" in m for m in msgs), msgs
    assert any("file_bytes" in m for m in msgs), msgs
    # mmap load sits under the --min-time floor by design: its jitter
    # must not flag (that is the whole point of the floor).
    jitter_mmap = json.loads(json.dumps(store))
    jitter_mmap["store"]["mmap_load_s"] = 0.04
    assert compare(store, jitter_mmap, 0.2, 0.05) == []
    # Phase peak RSS growth is flagged even at approx fidelity — the
    # marker flips comparisons off only by zeroing the metric, never
    # silently.
    rss_grown = json.loads(json.dumps(store))
    rss_grown["store"]["mmap_peak_rss_bytes"] = 600000
    msgs = compare(store, rss_grown, 0.2, 0.05)
    assert len(msgs) == 1 and "mmap_peak_rss_bytes" in msgs[0], msgs

    # --- speedup fields (dimensionless ratio, higher is better) ------
    simd = {
        "bench": "train",
        "simd": {
            "avx2_available": True,
            "scalar_stump_s": 4.0,
            "avx2_stump_s": 1.0,
            "simd_stump_speedup": 4.0,
        },
        "runs": [{"threads": 1, "speedup": 3.0, "locator_speedup": 2.5}],
    }
    # Unchanged: clean.
    assert compare(simd, simd, 0.2, 0.05) == []
    # The AVX2 kernel losing its edge is a regression even though the
    # component timings (scalar slower, avx2 unchanged) would not flag.
    eroded = json.loads(json.dumps(simd))
    eroded["simd"]["simd_stump_speedup"] = 2.0
    msgs = compare(simd, eroded, 0.2, 0.05)
    assert len(msgs) == 1 and "simd_stump_speedup" in msgs[0], msgs
    # A speedup gain is an improvement, never flagged.
    gained = json.loads(json.dumps(simd))
    gained["simd"]["simd_stump_speedup"] = 8.0
    assert compare(simd, gained, 0.2, 0.05) == []
    # Zero means unmeasured (no AVX2 on that host): skipped both ways.
    no_avx2 = json.loads(json.dumps(simd))
    no_avx2["simd"]["simd_stump_speedup"] = 0.0
    assert compare(no_avx2, simd, 0.2, 0.05) == []
    assert compare(simd, no_avx2, 0.2, 0.05) == []
    # Per-run hist-vs-exact speedups are keyed through the runs list.
    run_drop = json.loads(json.dumps(simd))
    run_drop["runs"][0]["locator_speedup"] = 1.0
    msgs = compare(simd, run_drop, 0.2, 0.05)
    assert len(msgs) == 1 and "locator_speedup" in msgs[0], msgs

    # --- bench_cluster (distributed serving) -------------------------
    # Mixed conventions again: ingest/query throughputs (_per_s),
    # request latencies and the two failure-detection latencies (_ms);
    # the byte-identity verdicts are bools and the shard/line counts
    # are plain integers — none of those are perf metrics.
    clus = {
        "bench": "cluster",
        "nodes": 3,
        "replication": 2,
        "deterministic": True,
        "rejoin_deterministic": True,
        "failover_detect_ms": 80.0,
        "membership_detect_ms": 290.0,
        "ingest_per_s": 40000.0,
        "ingest_p99_ms": 90.0,
        "query_per_s": 15000.0,
        "query_p99_ms": 70.0,
        "rejoin_lines_restored": 193,
        "newcomer_primary_shards": 4,
    }
    # Unchanged: clean (verdict bools and counts are not metrics).
    assert compare(clus, clus, 0.2, 0.05) == []
    # Slower failure detection is a regression — the whole point of the
    # membership layer is how fast the cluster routes around a death.
    slow_detect = json.loads(json.dumps(clus))
    slow_detect["failover_detect_ms"] = 200.0
    msgs = compare(clus, slow_detect, 0.2, 0.05)
    assert len(msgs) == 1 and "failover_detect_ms" in msgs[0], msgs
    # A replicated-ingest throughput drop is a regression; faster
    # detection plus higher query throughput is never flagged.
    slow_ingest = json.loads(json.dumps(clus))
    slow_ingest["ingest_per_s"] = 20000.0
    msgs = compare(clus, slow_ingest, 0.2, 0.05)
    assert len(msgs) == 1 and "ingest_per_s" in msgs[0], msgs
    better = json.loads(json.dumps(clus))
    better["membership_detect_ms"] = 100.0
    better["query_per_s"] = 60000.0
    assert compare(clus, better, 0.2, 0.05) == []

    # --- bench_drift (detection lag in weeks, lower is better) -------
    # The AUC fields carry no metric suffix on purpose (quality, not
    # perf); the lag is compared on value+1 so a zero-week detection
    # neither divides by zero nor flags an infinite regression.
    drift = {
        "bench": "drift",
        "spatial": {"spatial_auc": 0.97, "locator_auc": 0.62},
        "drift": {
            "onset_week": 34,
            "detection_lag_weeks": 2.0,
            "auc_recovery": 0.05,
            "replay_1t_s": 30.0,
        },
    }
    # Unchanged: clean (AUCs and week numbers are not perf metrics).
    assert compare(drift, drift, 0.2, 0.05) == []
    # Slower detection is a regression: 2wk -> 5wk is (5+1)/(2+1) = 2x.
    slow_lag = json.loads(json.dumps(drift))
    slow_lag["drift"]["detection_lag_weeks"] = 5.0
    msgs = compare(drift, slow_lag, 0.2, 0.05)
    assert len(msgs) == 1 and "detection_lag_weeks" in msgs[0], msgs
    # Faster detection is an improvement, never flagged.
    fast_lag = json.loads(json.dumps(drift))
    fast_lag["drift"]["detection_lag_weeks"] = 0.0
    assert compare(drift, fast_lag, 0.2, 0.05) == []
    # A zero-week baseline slipping to one week is (1+1)/(0+1) = 2x:
    # flagged, with no division blow-up on the zero.
    zero_lag = json.loads(json.dumps(fast_lag))
    one_lag = json.loads(json.dumps(fast_lag))
    one_lag["drift"]["detection_lag_weeks"] = 1.0
    msgs = compare(zero_lag, one_lag, 0.2, 0.05)
    assert len(msgs) == 1 and "detection_lag_weeks" in msgs[0], msgs
    # -1 means the monitor never fired: unmeasured, skipped both ways.
    never = json.loads(json.dumps(drift))
    never["drift"]["detection_lag_weeks"] = -1.0
    assert compare(never, drift, 0.2, 0.05) == []
    assert compare(drift, never, 0.2, 0.05) == []
    # The replay timing still obeys the ordinary _s convention.
    slow_replay = json.loads(json.dumps(drift))
    slow_replay["drift"]["replay_1t_s"] = 60.0
    msgs = compare(drift, slow_replay, 0.2, 0.05)
    assert len(msgs) == 1 and "replay_1t_s" in msgs[0], msgs

    # --- bench_scale (streaming pipeline, runs keyed by "lines") -----
    # Each run mixes conventions: stream throughputs (_per_s, higher is
    # better), phase timings (_s), phase-peak RSS and the artefact size
    # (_bytes, lower is better); the identity verdicts and rss_bounded
    # are bools and the lines/rows counts are plain integers — none of
    # those are perf metrics.
    scale = {
        "bench": "scale",
        "window_weeks": 8,
        "identity": {"lines": 10000, "chunks_identical": True,
                     "artefact_identical": True, "kernel_identical": True},
        "runs": [
            {"lines": 10000, "tables_s": 0.4, "stream_encode_s": 2.0,
             "stream_lines_per_s": 5000.0, "stream_line_weeks_per_s": 200000.0,
             "stream_peak_rss_bytes": 30000000,
             "artefact_file_bytes": 25000000, "rss_bounded": True},
            {"lines": 1000000, "tables_s": 40.0, "stream_encode_s": 210.0,
             "stream_lines_per_s": 4700.0, "stream_line_weeks_per_s": 190000.0,
             "stream_peak_rss_bytes": 1200000000,
             "artefact_file_bytes": 2500000000, "rss_bounded": True},
        ],
    }
    # Unchanged: clean (verdict bools, window/lines counts not metrics).
    assert compare(scale, scale, 0.2, 0.05) == []
    # A streamed-throughput drop at 1M lines is a regression, matched by
    # the "lines" key even when the run order flips.
    slow_stream = json.loads(json.dumps(scale))
    slow_stream["runs"][1]["stream_lines_per_s"] = 2000.0
    slow_stream["runs"].reverse()
    msgs = compare(scale, slow_stream, 0.2, 0.05)
    assert len(msgs) == 1 and "lines=1000000" in msgs[0], msgs
    assert "stream_lines_per_s" in msgs[0], msgs
    # Peak RSS growing past the threshold is a regression — the whole
    # point of the streaming pipeline is the residency bound.
    rss_up = json.loads(json.dumps(scale))
    rss_up["runs"][1]["stream_peak_rss_bytes"] = 5200000000
    msgs = compare(scale, rss_up, 0.2, 0.05)
    assert len(msgs) == 1 and "stream_peak_rss_bytes" in msgs[0], msgs
    # A faster encode phase is an improvement, never flagged.
    fast_scale = json.loads(json.dumps(scale))
    fast_scale["runs"][0]["stream_encode_s"] = 1.0
    fast_scale["runs"][0]["stream_lines_per_s"] = 10000.0
    assert compare(scale, fast_scale, 0.2, 0.05) == []

    # --- missing baseline: warn-and-pass, not a crash ----------------
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        cand_path = Path(tmp) / "BENCH_train.json"
        cand_path.write_text(json.dumps(simd))
        assert compare_files(Path(tmp) / "absent.json", cand_path,
                             0.2, 0.05) == []
    print("check_bench.py self-test passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline JSON file or dir")
    parser.add_argument("candidate", nargs="?", help="candidate JSON file or dir")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative slowdown that counts as a regression "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="ignore timings below this many seconds")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2

    base = Path(args.baseline)
    cand = Path(args.candidate)
    if base.is_dir() != cand.is_dir():
        print("error: baseline and candidate must both be files or both dirs",
              file=sys.stderr)
        return 2
    if base.is_dir():
        regressions = compare_dirs(base, cand, args.threshold, args.min_time)
    else:
        regressions = compare_files(base, cand, args.threshold, args.min_time)

    if regressions:
        print(f"{len(regressions)} timing regression(s) past "
              f"{args.threshold * 100:.0f}%:")
        for msg in regressions:
            print(f"  {msg}")
        return 1
    print("no timing regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
