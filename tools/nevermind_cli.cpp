// nevermind — command-line driver for the library's main workflows,
// for running the system without writing C++:
//
//   nevermind simulate --lines N --seed S --out DIR
//       simulate a year and export every data feed as CSV
//   nevermind predict  --lines N --seed S [--week W] [--top K] [--model F]
//       train the ticket predictor on the paper's split, print the top-K
//       ranked lines for week W (default 10/31), optionally save the
//       model bundle
//   nevermind locate   --lines N --seed S
//       train the trouble locator and print ranked test plans for the
//       current week's dispatches
//   nevermind serve    --lines N --seed S [--week W] [--shards P]
//       replay the year through the online serving stack (sharded line
//       store + model registry + micro-batched scoring service) and
//       print the same top-K ranking predict would
//   nevermind summary  --lines N --seed S
//       dataset overview (ticket trends, location shares)
//
// Trained artefacts round-trip through --save-models DIR /
// --load-models DIR: predict and serve use DIR/predictor.kernel
// ("nmkernel v1"), locate uses DIR/locator.model ("nmlocator v1").
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/scoring_kernel.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "exec/exec.hpp"
#include "dslsim/export.hpp"
#include "dslsim/summary.hpp"
#include "ml/serialization.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

namespace {

struct CliArgs {
  std::uint32_t lines = 10000;
  std::uint64_t seed = 42;
  int week = util::test_week_of(util::day_from_date(10, 31));
  std::size_t top = 25;
  std::string out_dir = ".";
  std::string model_path;
  std::string save_models_dir;
  std::string load_models_dir;
  std::size_t threads = 1;
  std::size_t shards = 16;
  ml::BinningMode binning = ml::BinningMode::kExact;

  /// Shared pool for the run; serial when --threads 1 (the default).
  [[nodiscard]] exec::ExecContext exec() const {
    return threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
  }
};

CliArgs parse(int argc, char** argv, int first) {
  CliArgs args;
  for (int i = first; i + 1 < argc + 1; ++i) {
    const auto flag = [&](const char* name) {
      return i + 1 < argc && std::strcmp(argv[i], name) == 0;
    };
    if (flag("--lines")) {
      args.lines = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (flag("--seed")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (flag("--week")) {
      args.week = std::atoi(argv[++i]);
    } else if (flag("--top")) {
      args.top = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (flag("--out")) {
      args.out_dir = argv[++i];
    } else if (flag("--model")) {
      args.model_path = argv[++i];
    } else if (flag("--save-models")) {
      args.save_models_dir = argv[++i];
    } else if (flag("--load-models")) {
      args.load_models_dir = argv[++i];
    } else if (flag("--threads")) {
      args.threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (flag("--shards")) {
      args.shards = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoi(argv[++i])));
    } else if (flag("--binning")) {
      const std::string mode = argv[++i];
      if (mode == "hist" || mode == "histogram") {
        args.binning = ml::BinningMode::kHistogram;
      } else if (mode == "exact") {
        args.binning = ml::BinningMode::kExact;
      } else {
        std::cerr << "unknown --binning mode '" << mode
                  << "' (expected exact|hist); using exact\n";
      }
    }
  }
  return args;
}

constexpr const char* kPredictorFile = "predictor.kernel";
constexpr const char* kLocatorFile = "locator.model";

/// Load a "nmkernel v1" artefact from DIR/predictor.kernel, printing a
/// specific diagnostic (missing file vs version mismatch vs corruption)
/// on failure.
std::optional<core::ScoringKernel> load_kernel(const std::string& dir) {
  const std::string path = dir + "/" + kPredictorFile;
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto kernel = core::ScoringKernel::load(is, &error);
  if (!kernel.has_value()) {
    std::cerr << "failed to load " << path << ": " << error << "\n";
  }
  return kernel;
}

bool save_kernel(const std::string& dir, const core::ScoringKernel& kernel) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + kPredictorFile;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  kernel.save(os);
  std::cerr << "saved predictor kernel to " << path << "\n";
  return true;
}

std::optional<core::TroubleLocator> load_locator(const std::string& dir) {
  const std::string path = dir + "/" + kLocatorFile;
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto locator = core::TroubleLocator::load(is, &error);
  if (!locator.has_value()) {
    std::cerr << "failed to load " << path << ": " << error << "\n";
  }
  return locator;
}

bool save_locator(const std::string& dir, const core::TroubleLocator& locator) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + kLocatorFile;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  locator.save(os);
  std::cerr << "saved locator to " << path << "\n";
  return true;
}

dslsim::SimDataset simulate(const CliArgs& args,
                            const exec::ExecContext& exec) {
  dslsim::SimConfig cfg;
  cfg.seed = args.seed;
  cfg.topology.n_lines = args.lines;
  std::cerr << "simulating " << args.lines << " lines (seed " << args.seed
            << ", " << exec.threads() << " thread(s))...\n";
  return dslsim::Simulator(cfg).run(exec);
}

int cmd_simulate(const CliArgs& args) {
  const auto data = simulate(args, args.exec());
  const auto write = [&](const char* name, auto&& writer) {
    const std::string path = args.out_dir + "/" + name;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    writer(os);
    std::cerr << "wrote " << path << "\n";
    return true;
  };
  bool ok = true;
  ok &= write("measurements.csv", [&](std::ostream& os) {
    dslsim::export_measurements_csv(data, os, 0, data.n_weeks() - 1);
  });
  ok &= write("tickets.csv", [&](std::ostream& os) {
    dslsim::export_tickets_csv(data, os);
  });
  ok &= write("notes.csv", [&](std::ostream& os) {
    dslsim::export_notes_csv(data, os);
  });
  ok &= write("profiles.csv", [&](std::ostream& os) {
    dslsim::export_profiles_csv(data, os);
  });
  ok &= write("outages.csv", [&](std::ostream& os) {
    dslsim::export_outages_csv(data, os);
  });
  return ok ? 0 : 1;
}

/// Predictor for this run: loaded from --load-models when given (no
/// retraining), otherwise trained on the paper's split and optionally
/// saved to --save-models.
std::optional<core::TicketPredictor> make_predictor(
    const CliArgs& args, const exec::ExecContext& exec,
    const dslsim::SimDataset& data) {
  core::PredictorConfig cfg;
  cfg.exec = exec;
  cfg.binning = args.binning;
  cfg.top_n = std::max<std::size_t>(args.lines / 100, 10);
  if (!args.load_models_dir.empty()) {
    auto kernel = load_kernel(args.load_models_dir);
    if (!kernel.has_value()) return std::nullopt;
    std::cerr << "loaded predictor kernel (" << kernel->selected.size()
              << " features)\n";
    return core::TicketPredictor(std::move(cfg), std::move(*kernel));
  }
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  std::cerr << "training on weeks " << train_from << "-" << train_to
            << "...\n";
  core::TicketPredictor predictor(std::move(cfg));
  predictor.train(data, train_from, train_to);
  if (!args.save_models_dir.empty() &&
      !save_kernel(args.save_models_dir, predictor.kernel())) {
    return std::nullopt;
  }
  return predictor;
}

int cmd_predict(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  auto predictor_opt = make_predictor(args, exec, data);
  if (!predictor_opt.has_value()) return 1;
  const core::TicketPredictor& predictor = *predictor_opt;

  if (!args.model_path.empty()) {
    ml::ModelBundle bundle;
    bundle.model = predictor.model();
    for (const auto& col : predictor.selected_columns()) {
      bundle.feature_names.push_back(col.name);
    }
    std::ofstream os(args.model_path);
    if (os) {
      ml::save_bundle(os, bundle);
      std::cerr << "saved model bundle to " << args.model_path << "\n";
    } else {
      std::cerr << "cannot write " << args.model_path << "\n";
    }
  }

  const auto ranked = predictor.predict_week(data, args.week);
  std::cout << "rank,line,dslam,score,probability\n";
  for (std::size_t i = 0; i < args.top && i < ranked.size(); ++i) {
    std::cout << i + 1 << ',' << ranked[i].line << ','
              << data.topology().dslam_of(ranked[i].line) << ','
              << ranked[i].score << ',' << ranked[i].probability << '\n';
  }
  return 0;
}

int cmd_locate(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  std::optional<core::TroubleLocator> locator_opt;
  if (!args.load_models_dir.empty()) {
    locator_opt = load_locator(args.load_models_dir);
    if (!locator_opt.has_value()) return 1;
    std::cerr << "loaded locator (" << locator_opt->covered().size()
              << " dispositions)\n";
  } else {
    core::LocatorConfig cfg;
    cfg.exec = exec;
    cfg.binning = args.binning;
    cfg.min_occurrences = std::max<std::size_t>(6, args.lines / 2000);
    const int train_from = util::test_week_of(util::day_from_date(8, 1));
    const int train_to = util::test_week_of(util::day_from_date(9, 18));
    std::cerr << "training locator...\n";
    locator_opt.emplace(cfg);
    locator_opt->train(data, train_from, train_to);
    if (!args.save_models_dir.empty() &&
        !save_locator(args.save_models_dir, *locator_opt)) {
      return 1;
    }
  }
  const core::TroubleLocator& locator = *locator_opt;

  const auto block = features::encode_at_dispatch(data, args.week, args.week,
                                                  locator.encoder_config());
  std::cout << "ticket,line,plan\n";
  std::vector<float> row(block.dataset.n_cols());
  for (std::size_t r = 0; r < block.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[block.note_of_row[r]];
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = block.dataset.at(r, j);
    const auto plan = locator.rank(row, core::LocatorModelKind::kCombined);
    std::cout << note.ticket_id << ',' << note.line << ',';
    for (std::size_t i = 0; i < 5 && i < plan.size(); ++i) {
      if (i != 0) std::cout << '|';
      std::cout << data.catalog().signature(plan[i].disposition).code;
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_serve(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  auto predictor_opt = make_predictor(args, exec, data);
  if (!predictor_opt.has_value()) return 1;

  serve::LineStateStore store(args.shards);
  serve::ModelRegistry registry;
  const std::uint64_t version =
      registry.publish(predictor_opt->kernel());
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  serve::ScoringService service(store, registry, service_cfg);

  std::cerr << "replaying feeds through week " << args.week << " ("
            << args.shards << " shards, model v" << version << ")...\n";
  serve::ReplayDriver replay(data, store);
  replay.feed_through(args.week, exec);
  std::cerr << "ingested " << store.measurements_ingested()
            << " measurements, " << store.tickets_ingested()
            << " tickets across " << store.n_lines() << " lines\n";

  const auto ranked = service.top_n(args.top);
  std::cout << "rank,line,dslam,week,score,probability,model_version\n";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::cout << i + 1 << ',' << ranked[i].line << ','
              << data.topology().dslam_of(ranked[i].line) << ','
              << ranked[i].week << ',' << ranked[i].score << ','
              << ranked[i].probability << ',' << ranked[i].model_version
              << '\n';
  }
  return 0;
}

int cmd_summary(const CliArgs& args) {
  const auto data = simulate(args, args.exec());
  const auto tickets = dslsim::summarize_tickets(data);
  const auto measurements = dslsim::summarize_measurements(data);
  std::cout << "customer-edge tickets: " << tickets.edge_total
            << " (dispatched " << tickets.dispatched << "), billing: "
            << tickets.billing_total << "\n"
            << "line-test records: " << measurements.records << ", missing: "
            << util::fmt_percent(measurements.missing_rate) << "\n";
  util::Table loc({"location", "dispatches", "share"});
  for (const auto& ls : dslsim::summarize_locations(data)) {
    loc.add_row({dslsim::major_location_name(ls.location),
                 std::to_string(ls.dispatches), util::fmt_percent(ls.share)});
  }
  loc.print(std::cout);
  return 0;
}

void usage() {
  std::cerr << "usage: nevermind <simulate|predict|locate|serve|summary> "
               "[--lines N] [--seed S] [--week W] [--top K] [--out DIR] "
               "[--model FILE] [--save-models DIR] [--load-models DIR] "
               "[--threads T] [--shards P] [--binning exact|hist]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const CliArgs args = parse(argc, argv, 2);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "predict") return cmd_predict(args);
  if (cmd == "locate") return cmd_locate(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "summary") return cmd_summary(args);
  usage();
  return 2;
}
