// nevermind — command-line driver for the library's main workflows,
// for running the system without writing C++:
//
//   nevermind simulate --lines N --seed S --out DIR
//       simulate a year and export every data feed as CSV
//   nevermind predict  --lines N --seed S [--week W] [--top K] [--model F]
//       train the ticket predictor on the paper's split, print the top-K
//       ranked lines for week W (default 10/31), optionally save the
//       model bundle
//   nevermind locate   --lines N --seed S
//       train the trouble locator and print ranked test plans for the
//       current week's dispatches
//   nevermind serve    --lines N --seed S [--week W] [--shards P]
//       replay the year through the online serving stack (sharded line
//       store + model registry + micro-batched scoring service) and
//       print the same top-K ranking predict would
//   nevermind serve    --lines N --seed S --listen PORT
//       train (or --load-models) and expose the scoring service on a
//       TCP port speaking the framed binary protocol; runs until
//       SIGINT/SIGTERM, then drains in-flight requests and exits
//   nevermind loadgen  --port P [--host H] [--connections C] [--week W]
//       simulate the same dataset, replay its feeds against a live
//       server over C connections, fetch every score over the wire and
//       print per-op throughput/latency plus the served top-K
//   nevermind cluster-node --listen PORT [--node-id I] [--shards P]
//       run one member of a serving cluster: idles until a coordinator
//       pushes a model and shard map, then serves its shard subset,
//       heartbeats its peers, and fails over around dead ones; runs
//       until SIGINT/SIGTERM
//   nevermind serve    ... --cluster HOST:PORT,HOST:PORT,...
//       coordinator mode: train (or --load-models), push the model and
//       a fresh shard map to the listed cluster-node processes, replay
//       the feeds through a replicating ShardRouter, and print the
//       cluster-merged top-K — byte-identical to single-node serve
//   nevermind spatial  --lines N --seed S [--week W]
//       simulate a year with correlated infrastructure faults enabled,
//       aggregate per-line anomaly evidence up the crossbox/DSLAM/ATM
//       hierarchy for week W, and print network-vs-premise verdicts
//       next to the injected ground-truth events
//   nevermind summary  --lines N --seed S
//       dataset overview (ticket trends, location shares)
//   nevermind dataset FILE [--verify]
//       inspect a persisted feature-store artefact (kind, shape, aux
//       row mappings, checksum verification)
//
// Trained artefacts round-trip through --save-models DIR /
// --load-models DIR: predict and serve use DIR/predictor.kernel
// ("nmkernel v1"), locate uses DIR/locator.model ("nmlocator v1").
//
// Encoded training matrices round-trip through --save-dataset FILE /
// --load-dataset FILE: a FILE ending in .nmarena is the binary
// columnar feature store (loaded zero-copy via mmap by default, or
// eagerly with --dataset-load eager), anything else the portable text
// fallback. Training from a loaded artefact skips the encode pass and
// reproduces the directly-trained model byte for byte.
//
// --stream (simulate/predict/locate/serve) runs the same workflows
// without materializing the year of weekly measurements: the simulator
// streams per-week chunks into the encoder and the serving replay
// through a bounded rolling window (--window-weeks, default 8),
// training goes through a .nmarena artefact + mmap load, and every
// output is byte-identical to the materialized command.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/router.hpp"
#include "cluster/types.hpp"
#include "core/scoring_kernel.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "exec/exec.hpp"
#include "dslsim/export.hpp"
#include "dslsim/summary.hpp"
#include "features/dataset_io.hpp"
#include "ml/feature_store.hpp"
#include "ml/serialization.hpp"
#include "ml/simd.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "serve/line_state_store.hpp"
#include "spatial/aggregator.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

namespace {

struct CliArgs {
  std::uint32_t lines = 10000;
  // Plant shape knobs (Fig 1 hierarchy): defaults match TopologyConfig.
  std::uint32_t lines_per_dslam = 48;
  std::uint32_t dslams_per_atm = 24;
  std::uint32_t crossboxes_per_dslam = 6;
  std::uint64_t seed = 42;
  int week = util::test_week_of(util::day_from_date(10, 31));
  std::size_t top = 25;
  std::string out_dir = ".";
  std::string model_path;
  std::string save_models_dir;
  std::string load_models_dir;
  std::string save_dataset_path;
  std::string load_dataset_path;
  ml::ArenaLoadMode dataset_mode = ml::ArenaLoadMode::kMapped;
  std::size_t threads = 1;
  std::size_t shards = 16;
  ml::BinningMode binning = ml::BinningMode::kExact;
  // Network front-end (serve --listen / loadgen).
  std::optional<std::uint16_t> listen_port;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::size_t deadline_ms = 0;
  // Cluster coordinator mode (serve --cluster).
  std::string cluster_peers;
  std::size_t cluster_shards = 12;
  std::size_t replication = 2;
  // Streamed pipeline (--stream): simulate→encode→train without a
  // materialized year of measurements; --window-weeks bounds how many
  // weeks the rolling chunk buffer keeps resident.
  bool stream = false;
  std::optional<int> window_weeks;

  [[nodiscard]] int window() const { return window_weeks.value_or(8); }

  /// Shared pool for the run; serial when --threads 1 (the default).
  [[nodiscard]] exec::ExecContext exec() const {
    return threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
  }
};

void usage();

[[noreturn]] void die_usage(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  usage();
  std::exit(2);
}

/// Checked unsigned parse: the whole token must be a decimal number in
/// [min, max] — "foo", "12foo", "-3", "" and out-of-range values all
/// die with the flag named, instead of silently becoming 0 as atoi
/// would make them.
std::uint64_t parse_uint(const char* flag, const char* text,
                         std::uint64_t min_value, std::uint64_t max_value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || text[0] == '-' || errno == ERANGE ||
      value < min_value || value > max_value) {
    die_usage(std::string(flag) + " expects an integer in [" +
              std::to_string(min_value) + ", " + std::to_string(max_value) +
              "], got '" + text + "'");
  }
  return value;
}

/// Checked signed parse with the same full-token discipline.
std::int64_t parse_int(const char* flag, const char* text,
                       std::int64_t min_value, std::int64_t max_value) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min_value ||
      value > max_value) {
    die_usage(std::string(flag) + " expects an integer in [" +
              std::to_string(min_value) + ", " + std::to_string(max_value) +
              "], got '" + text + "'");
  }
  return value;
}

CliArgs parse(int argc, char** argv, int first) {
  CliArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) die_usage("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--lines") {
      args.lines = static_cast<std::uint32_t>(
          parse_uint("--lines", value(), 1, 10'000'000));
    } else if (flag == "--lines-per-dslam") {
      args.lines_per_dslam = static_cast<std::uint32_t>(
          parse_uint("--lines-per-dslam", value(), 1, 4096));
    } else if (flag == "--dslams-per-atm") {
      args.dslams_per_atm = static_cast<std::uint32_t>(
          parse_uint("--dslams-per-atm", value(), 1, 4096));
    } else if (flag == "--crossboxes-per-dslam") {
      args.crossboxes_per_dslam = static_cast<std::uint32_t>(
          parse_uint("--crossboxes-per-dslam", value(), 1, 1024));
    } else if (flag == "--seed") {
      args.seed = parse_uint("--seed", value(), 0,
                             std::numeric_limits<std::uint64_t>::max());
    } else if (flag == "--week") {
      args.week = static_cast<int>(parse_int("--week", value(), 0, 52));
    } else if (flag == "--top") {
      args.top = static_cast<std::size_t>(
          parse_uint("--top", value(), 1, 10'000'000));
    } else if (flag == "--out") {
      args.out_dir = value();
    } else if (flag == "--model") {
      args.model_path = value();
    } else if (flag == "--save-models") {
      args.save_models_dir = value();
    } else if (flag == "--load-models") {
      args.load_models_dir = value();
    } else if (flag == "--save-dataset") {
      args.save_dataset_path = value();
    } else if (flag == "--load-dataset") {
      args.load_dataset_path = value();
    } else if (flag == "--dataset-load") {
      const std::string mode = value();
      if (mode == "mmap") {
        args.dataset_mode = ml::ArenaLoadMode::kMapped;
      } else if (mode == "eager") {
        args.dataset_mode = ml::ArenaLoadMode::kEager;
      } else {
        die_usage("unknown --dataset-load mode '" + mode +
                  "' (expected eager|mmap)");
      }
    } else if (flag == "--threads") {
      // 0 stays accepted as an explicit "serial" (exec() treats <2 as
      // serial); non-numeric input is rejected rather than silently 0.
      args.threads =
          static_cast<std::size_t>(parse_uint("--threads", value(), 0, 256));
    } else if (flag == "--shards") {
      args.shards =
          static_cast<std::size_t>(parse_uint("--shards", value(), 1, 4096));
    } else if (flag == "--listen") {
      args.listen_port = static_cast<std::uint16_t>(
          parse_uint("--listen", value(), 0, 65535));
    } else if (flag == "--host") {
      args.host = value();
    } else if (flag == "--port") {
      args.port =
          static_cast<std::uint16_t>(parse_uint("--port", value(), 1, 65535));
    } else if (flag == "--connections") {
      args.connections = static_cast<std::size_t>(
          parse_uint("--connections", value(), 1, 1024));
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = static_cast<std::size_t>(
          parse_uint("--deadline-ms", value(), 0, 3'600'000));
    } else if (flag == "--stream") {
      args.stream = true;
    } else if (flag == "--window-weeks") {
      args.window_weeks =
          static_cast<int>(parse_uint("--window-weeks", value(), 1, 52));
    } else if (flag == "--cluster") {
      args.cluster_peers = value();
    } else if (flag == "--cluster-shards") {
      args.cluster_shards = static_cast<std::size_t>(
          parse_uint("--cluster-shards", value(), 1, 65536));
    } else if (flag == "--replication") {
      args.replication = static_cast<std::size_t>(
          parse_uint("--replication", value(), 1, 64));
    } else if (flag == "--binning") {
      const std::string mode = value();
      if (mode == "hist" || mode == "histogram") {
        args.binning = ml::BinningMode::kHistogram;
      } else if (mode == "exact") {
        args.binning = ml::BinningMode::kExact;
      } else {
        die_usage("unknown --binning mode '" + mode +
                  "' (expected exact|hist)");
      }
    } else if (flag == "--simd") {
      // Process-wide kernel dispatch override; without the flag the
      // NEVERMIND_SIMD environment variable (default auto) decides.
      const std::string mode = value();
      const auto parsed = ml::simd::parse_mode(mode);
      if (!parsed.has_value()) {
        die_usage("unknown --simd mode '" + mode +
                  "' (expected auto|scalar|avx2)");
      }
      ml::simd::set_mode(*parsed);
    } else {
      die_usage("unknown argument '" + flag + "'");
    }
  }
  return args;
}

constexpr const char* kPredictorFile = "predictor.kernel";
constexpr const char* kLocatorFile = "locator.model";

/// Load a "nmkernel v1" artefact from DIR/predictor.kernel, printing a
/// specific diagnostic (missing file vs version mismatch vs corruption)
/// on failure.
std::optional<core::ScoringKernel> load_kernel(const std::string& dir) {
  const std::string path = dir + "/" + kPredictorFile;
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto kernel = core::ScoringKernel::load(is, &error);
  if (!kernel.has_value()) {
    std::cerr << "failed to load " << path << ": " << error << "\n";
  }
  return kernel;
}

bool save_kernel(const std::string& dir, const core::ScoringKernel& kernel) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + kPredictorFile;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  kernel.save(os);
  std::cerr << "saved predictor kernel to " << path << "\n";
  return true;
}

std::optional<core::TroubleLocator> load_locator(const std::string& dir) {
  const std::string path = dir + "/" + kLocatorFile;
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot read " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto locator = core::TroubleLocator::load(is, &error);
  if (!locator.has_value()) {
    std::cerr << "failed to load " << path << ": " << error << "\n";
  }
  return locator;
}

bool save_locator(const std::string& dir, const core::TroubleLocator& locator) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + kLocatorFile;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  locator.save(os);
  std::cerr << "saved locator to " << path << "\n";
  return true;
}

/// Upfront validation of every artefact path the run will need, so a
/// long simulate/train pass cannot end in an unwritable-directory or
/// missing-file surprise. Violations are usage errors: named flag,
/// clear message, exit 2.
void validate_artefact_paths(const CliArgs& args, const std::string& cmd) {
  namespace fs = std::filesystem;
  const auto fail = [](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    std::exit(2);
  };
  if (!args.load_models_dir.empty()) {
    const char* file = cmd == "locate" ? kLocatorFile : kPredictorFile;
    const std::string path = args.load_models_dir + "/" + file;
    if (::access(path.c_str(), R_OK) != 0) {
      fail("--load-models: cannot read " + path + ": " +
           std::strerror(errno));
    }
  }
  if (!args.save_models_dir.empty()) {
    std::error_code ec;
    fs::create_directories(args.save_models_dir, ec);
    if (!fs::is_directory(args.save_models_dir, ec) ||
        ::access(args.save_models_dir.c_str(), W_OK) != 0) {
      fail("--save-models: directory '" + args.save_models_dir +
           "' is not writable: " + std::strerror(errno));
    }
  }
  if (!args.load_dataset_path.empty()) {
    std::error_code ec;
    if (::access(args.load_dataset_path.c_str(), R_OK) != 0 ||
        fs::is_directory(args.load_dataset_path, ec)) {
      fail("--load-dataset: cannot read " + args.load_dataset_path + ": " +
           std::strerror(errno != 0 ? errno : EISDIR));
    }
  }
  if (!args.save_dataset_path.empty()) {
    fs::path parent = fs::path(args.save_dataset_path).parent_path();
    if (parent.empty()) parent = ".";
    std::error_code ec;
    if (!fs::is_directory(parent, ec)) {
      fail("--save-dataset: '" + parent.string() + "' is not a directory");
    }
    if (::access(parent.c_str(), W_OK) != 0) {
      fail("--save-dataset: directory '" + parent.string() +
           "' is not writable: " + std::strerror(errno));
    }
  }
}

/// Flag-combination checks for the streamed pipeline, in the same
/// exit-2 discipline as the artefact path validation: every rejected
/// combination names the flags and dies before any simulation runs.
void validate_stream_flags(const CliArgs& args, const std::string& cmd) {
  if (!args.stream) {
    if (args.window_weeks.has_value()) {
      die_usage("--window-weeks only applies to --stream runs");
    }
    return;
  }
  if (cmd != "simulate" && cmd != "predict" && cmd != "locate" &&
      cmd != "serve") {
    die_usage("--stream is not supported for '" + cmd + "'");
  }
  if (!args.load_dataset_path.empty()) {
    die_usage("--stream and --load-dataset are mutually exclusive (a loaded "
              "artefact replaces the pipeline being streamed)");
  }
  if (!args.load_models_dir.empty()) {
    die_usage("--stream and --load-models are mutually exclusive (a loaded "
              "model skips the streamed training pass)");
  }
  if (args.listen_port.has_value()) {
    die_usage("--stream is not supported with --listen");
  }
  if (!args.cluster_peers.empty()) {
    die_usage("--stream is not supported with --cluster");
  }
  if (!args.save_dataset_path.empty()) {
    constexpr std::string_view kExt = ".nmarena";
    const std::string& p = args.save_dataset_path;
    if (p.size() < kExt.size() ||
        p.compare(p.size() - kExt.size(), kExt.size(), kExt) != 0) {
      die_usage("--save-dataset with --stream requires a binary .nmarena "
                "path (the text form cannot be streamed)");
    }
  }
}

/// SimConfig shared by every command: the dataset shape comes from the
/// CLI knobs, everything else stays at the paper defaults.
dslsim::SimConfig sim_config(const CliArgs& args) {
  dslsim::SimConfig cfg;
  cfg.seed = args.seed;
  cfg.topology.n_lines = args.lines;
  cfg.topology.lines_per_dslam = args.lines_per_dslam;
  cfg.topology.dslams_per_atm = args.dslams_per_atm;
  cfg.topology.crossboxes_per_dslam = args.crossboxes_per_dslam;
  return cfg;
}

dslsim::SimDataset simulate(const CliArgs& args,
                            const exec::ExecContext& exec) {
  const dslsim::SimConfig cfg = sim_config(args);
  std::cerr << "simulating " << args.lines << " lines (seed " << args.seed
            << ", " << exec.threads() << " thread(s))...\n";
  return dslsim::Simulator(cfg).run(exec);
}

bool write_csv(const CliArgs& args, const char* name, auto&& writer) {
  const std::string path = args.out_dir + "/" + name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  writer(os);
  std::cerr << "wrote " << path << "\n";
  return true;
}

/// The four feeds that only need the simulation tables (no weekly
/// measurements) — shared by the materialized and streamed exports.
bool write_table_csvs(const CliArgs& args, const dslsim::SimDataset& data) {
  bool ok = true;
  ok &= write_csv(args, "tickets.csv", [&](std::ostream& os) {
    dslsim::export_tickets_csv(data, os);
  });
  ok &= write_csv(args, "notes.csv", [&](std::ostream& os) {
    dslsim::export_notes_csv(data, os);
  });
  ok &= write_csv(args, "profiles.csv", [&](std::ostream& os) {
    dslsim::export_profiles_csv(data, os);
  });
  ok &= write_csv(args, "outages.csv", [&](std::ostream& os) {
    dslsim::export_outages_csv(data, os);
  });
  return ok;
}

/// simulate --stream: build the tables only, then stream the weekly
/// measurements straight into measurements.csv one chunk at a time —
/// the year of measurements is never resident, and the file is byte
/// identical to the materialized export.
int cmd_simulate_stream(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const dslsim::Simulator sim(sim_config(args));
  std::cerr << "streaming " << args.lines << " lines (seed " << args.seed
            << ", " << exec.threads() << " thread(s))...\n";
  const dslsim::SimDataset tables = sim.build_tables(exec);

  const std::string path = args.out_dir + "/measurements.csv";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  dslsim::export_measurements_csv_header(os);
  sim.stream_weeks(tables, exec, [&](const dslsim::WeekChunk& chunk) {
    dslsim::export_measurements_csv_chunk(chunk, os);
  });
  os.flush();
  if (!os) {
    std::cerr << "write failed for " << path << "\n";
    return 1;
  }
  std::cerr << "wrote " << path << " (streamed)\n";
  return write_table_csvs(args, tables) ? 0 : 1;
}

int cmd_simulate(const CliArgs& args) {
  if (args.stream) return cmd_simulate_stream(args);
  const auto data = simulate(args, args.exec());
  bool ok = write_csv(args, "measurements.csv", [&](std::ostream& os) {
    dslsim::export_measurements_csv(data, os, 0, data.n_weeks() - 1);
  });
  ok &= write_table_csvs(args, data);
  return ok ? 0 : 1;
}

/// Predictor for this run: loaded from --load-models when given (no
/// retraining), trained from a persisted --load-dataset artefact (no
/// encode pass), otherwise trained on the paper's split; optionally
/// saved to --save-models, with the encoded training matrix optionally
/// persisted to --save-dataset.
std::optional<core::TicketPredictor> make_predictor(
    const CliArgs& args, const exec::ExecContext& exec,
    const dslsim::SimDataset& data) {
  core::PredictorConfig cfg;
  cfg.exec = exec;
  cfg.binning = args.binning;
  cfg.top_n = std::max<std::size_t>(args.lines / 100, 10);
  const int horizon_days = cfg.horizon_days;
  if (!args.load_models_dir.empty()) {
    auto kernel = load_kernel(args.load_models_dir);
    if (!kernel.has_value()) return std::nullopt;
    std::cerr << "loaded predictor kernel (" << kernel->selected.size()
              << " features)\n";
    return core::TicketPredictor(std::move(cfg), std::move(*kernel));
  }
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  core::TicketPredictor predictor(std::move(cfg));
  if (!args.load_dataset_path.empty()) {
    ml::StoreStatus st;
    auto loaded = features::load_predictor_dataset(args.load_dataset_path,
                                                   args.dataset_mode, &st);
    if (!loaded.has_value()) {
      std::cerr << "cannot load dataset " << args.load_dataset_path << ": "
                << st.message << "\n";
      return std::nullopt;
    }
    std::cerr << "training from "
              << (loaded->block.dataset.file_backed() ? "mmap'ed" : "loaded")
              << " dataset artefact (" << loaded->block.dataset.n_rows()
              << " x " << loaded->block.dataset.n_cols() << ")...\n";
    try {
      predictor.train_from_block(loaded->block, loaded->encoder);
    } catch (const std::invalid_argument& e) {
      std::cerr << "dataset artefact rejected: " << e.what() << "\n";
      return std::nullopt;
    }
  } else {
    std::cerr << "training on weeks " << train_from << "-" << train_to
              << "...\n";
    predictor.train(data, train_from, train_to);
  }
  if (!args.save_dataset_path.empty()) {
    const features::TicketLabeler labeler{horizon_days};
    const auto st = features::save_predictor_dataset(
        args.save_dataset_path, data, train_from, train_to,
        predictor.full_encoder_config(), labeler);
    if (!st.ok()) {
      std::cerr << "cannot write dataset " << args.save_dataset_path << ": "
                << st.message << "\n";
      return std::nullopt;
    }
    std::cerr << "saved training matrix to " << args.save_dataset_path
              << "\n";
  }
  if (!args.save_models_dir.empty() &&
      !save_kernel(args.save_models_dir, predictor.kernel())) {
    return std::nullopt;
  }
  return predictor;
}

/// Scratch artefact path for streamed runs that did not ask to keep
/// the training matrix (--save-dataset); removed after training.
std::string temp_artefact_path(const char* tag) {
  std::error_code ec;
  auto dir = std::filesystem::temp_directory_path(ec);
  if (ec) dir = ".";
  return (dir / ("nevermind_stream_" + std::string(tag) + "_" +
                 std::to_string(::getpid()) + ".nmarena"))
      .string();
}

/// Save the --model bundle exactly as cmd_predict does.
void maybe_save_bundle(const CliArgs& args,
                       const core::TicketPredictor& predictor) {
  if (args.model_path.empty()) return;
  ml::ModelBundle bundle;
  bundle.model = predictor.model();
  for (const auto& col : predictor.selected_columns()) {
    bundle.feature_names.push_back(col.name);
  }
  std::ofstream os(args.model_path);
  if (os) {
    ml::save_bundle(os, bundle);
    std::cerr << "saved model bundle to " << args.model_path << "\n";
  } else {
    std::cerr << "cannot write " << args.model_path << "\n";
  }
}

/// predict/serve --stream: the full pipeline without a materialized
/// year of measurements. Two streaming passes over the simulated
/// weeks, both through a bounded rolling window:
///
///   pass 1  encodes the base-feature training matrix (the stage-1
///           planning input) while feeding the serving replay through
///           the scored week, so the line store ends in exactly the
///           state the offline encoder sees;
///   plan    runs stage-1 feature selection on the mmap'ed base
///           artefact to derive the full encoder configuration train()
///           would use;
///   pass 2  encodes the full derived-feature matrix to --save-dataset
///           (or a scratch artefact), which is mmap'ed and fed to
///           train_from_block — byte-identical to train() over a
///           materialized run.
///
/// The ranking comes from the scoring service over the replayed store,
/// which matches predict_week byte for byte, so `predict --stream`
/// prints exactly what `predict` does.
int run_stream_scoring(const CliArgs& args, bool serve_format) {
  const exec::ExecContext exec = args.exec();
  const dslsim::Simulator sim(sim_config(args));
  std::cerr << "streaming " << args.lines << " lines (seed " << args.seed
            << ", " << exec.threads() << " thread(s), window "
            << args.window() << " weeks)...\n";
  const dslsim::SimDataset tables = sim.build_tables(exec);

  core::PredictorConfig cfg;
  cfg.exec = exec;
  cfg.binning = args.binning;
  cfg.top_n = std::max<std::size_t>(args.lines / 100, 10);
  const int horizon_days = cfg.horizon_days;
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  core::TicketPredictor predictor(std::move(cfg));
  const features::TicketLabeler labeler{horizon_days};

  features::EncoderConfig base_cfg = predictor.config().encoder;
  base_cfg.include_quadratic = false;
  base_cfg.product_pairs.clear();

  serve::LineStateStore store(args.shards);
  serve::ReplayDriver replay(tables, store);

  // ---- pass 1: base matrix + serving replay ------------------------
  const std::string base_path = temp_artefact_path("base");
  features::StreamPipelineOptions base_opts;
  base_opts.window_weeks = args.window();
  base_opts.stream_through = args.week;
  base_opts.tap = [&](const dslsim::WeekChunk& chunk) {
    if (chunk.week <= args.week) replay.feed_week_chunk(chunk, exec);
  };
  std::cerr << "pass 1/2: streaming base matrix (weeks " << train_from << "-"
            << train_to << ") + replay through week " << args.week
            << "...\n";
  ml::StoreStatus st = features::stream_save_predictor_dataset(
      base_path, sim, tables, exec, train_from, train_to, base_cfg, labeler,
      base_opts);
  if (!st.ok()) {
    std::cerr << "cannot write " << base_path << ": " << st.message << "\n";
    return 1;
  }

  features::EncoderConfig full_cfg;
  {
    auto base_loaded =
        features::load_predictor_dataset(base_path, args.dataset_mode, &st);
    if (!base_loaded.has_value()) {
      std::cerr << "cannot load " << base_path << ": " << st.message << "\n";
      return 1;
    }
    try {
      full_cfg = predictor.plan_full_encoder(base_loaded->block);
    } catch (const std::invalid_argument& e) {
      std::cerr << "stage-1 planning failed: " << e.what() << "\n";
      return 1;
    }
  }
  std::filesystem::remove(base_path);

  // ---- pass 2: full matrix → mmap → train_from_block ---------------
  const bool keep_dataset = !args.save_dataset_path.empty();
  const std::string full_path =
      keep_dataset ? args.save_dataset_path : temp_artefact_path("full");
  features::StreamPipelineOptions full_opts;
  full_opts.window_weeks = args.window();
  std::cerr << "pass 2/2: streaming full matrix (weeks " << train_from << "-"
            << train_to << ")...\n";
  st = features::stream_save_predictor_dataset(full_path, sim, tables, exec,
                                               train_from, train_to, full_cfg,
                                               labeler, full_opts);
  if (!st.ok()) {
    std::cerr << "cannot write " << full_path << ": " << st.message << "\n";
    return 1;
  }
  if (keep_dataset) {
    std::cerr << "saved training matrix to " << full_path << "\n";
  }
  {
    auto loaded =
        features::load_predictor_dataset(full_path, args.dataset_mode, &st);
    if (!loaded.has_value()) {
      std::cerr << "cannot load " << full_path << ": " << st.message << "\n";
      return 1;
    }
    std::cerr << "training from "
              << (loaded->block.dataset.file_backed() ? "mmap'ed" : "loaded")
              << " streamed artefact (" << loaded->block.dataset.n_rows()
              << " x " << loaded->block.dataset.n_cols() << ")...\n";
    try {
      predictor.train_from_block(loaded->block, loaded->encoder);
    } catch (const std::invalid_argument& e) {
      std::cerr << "dataset artefact rejected: " << e.what() << "\n";
      return 1;
    }
  }
  if (!keep_dataset) std::filesystem::remove(full_path);
  if (!args.save_models_dir.empty() &&
      !save_kernel(args.save_models_dir, predictor.kernel())) {
    return 1;
  }
  if (!serve_format) maybe_save_bundle(args, predictor);

  serve::ModelRegistry registry;
  const std::uint64_t version = registry.publish(predictor.kernel());
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  serve::ScoringService service(store, registry, service_cfg);
  std::cerr << "ranking from the replayed store (" << args.shards
            << " shards, model v" << version << ", "
            << store.measurements_ingested() << " measurements, "
            << store.tickets_ingested() << " tickets)...\n";
  const auto ranked = service.top_n(args.top);
  if (serve_format) {
    std::cout << "rank,line,dslam,week,score,probability,model_version\n";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      std::cout << i + 1 << ',' << ranked[i].line << ','
                << tables.topology().dslam_of(ranked[i].line) << ','
                << ranked[i].week << ',' << ranked[i].score << ','
                << ranked[i].probability << ',' << ranked[i].model_version
                << '\n';
    }
  } else {
    std::cout << "rank,line,dslam,score,probability\n";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      std::cout << i + 1 << ',' << ranked[i].line << ','
                << tables.topology().dslam_of(ranked[i].line) << ','
                << ranked[i].score << ',' << ranked[i].probability << '\n';
    }
  }
  return 0;
}

int cmd_predict(const CliArgs& args) {
  if (args.stream) return run_stream_scoring(args, /*serve_format=*/false);
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  auto predictor_opt = make_predictor(args, exec, data);
  if (!predictor_opt.has_value()) return 1;
  const core::TicketPredictor& predictor = *predictor_opt;
  maybe_save_bundle(args, predictor);

  const auto ranked = predictor.predict_week(data, args.week);
  std::cout << "rank,line,dslam,score,probability\n";
  for (std::size_t i = 0; i < args.top && i < ranked.size(); ++i) {
    std::cout << i + 1 << ',' << ranked[i].line << ','
              << data.topology().dslam_of(ranked[i].line) << ','
              << ranked[i].score << ',' << ranked[i].probability << '\n';
  }
  return 0;
}

/// locate --stream: one streaming pass encodes the training matrix to
/// a (possibly scratch) .nmarena artefact while a second dispatch
/// encoder riding the same chunks captures week --week's ranking rows
/// in memory; the locator then trains from the mmap'ed artefact.
int cmd_locate_stream(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const dslsim::Simulator sim(sim_config(args));
  std::cerr << "streaming " << args.lines << " lines (seed " << args.seed
            << ", " << exec.threads() << " thread(s), window "
            << args.window() << " weeks)...\n";
  const dslsim::SimDataset tables = sim.build_tables(exec);

  core::LocatorConfig cfg;
  cfg.exec = exec;
  cfg.binning = args.binning;
  cfg.min_occurrences = std::max<std::size_t>(6, args.lines / 2000);
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 18));
  core::TroubleLocator locator(cfg);

  std::vector<std::vector<float>> rank_rows;
  std::vector<std::uint32_t> rank_notes;
  features::DispatchEncoder rank_encoder(
      tables, args.week, args.week, locator.encoder_config(),
      [&](std::span<const float> row, std::uint32_t note_idx) {
        rank_rows.emplace_back(row.begin(), row.end());
        rank_notes.push_back(note_idx);
      });

  const bool keep_dataset = !args.save_dataset_path.empty();
  const std::string path =
      keep_dataset ? args.save_dataset_path : temp_artefact_path("locator");
  features::StreamPipelineOptions opts;
  opts.window_weeks = args.window();
  opts.stream_through = args.week;
  opts.tap = [&](const dslsim::WeekChunk& chunk) {
    rank_encoder.on_week(chunk.week, chunk.measurements);
  };
  std::cerr << "streaming locator matrix (weeks " << train_from << "-"
            << train_to << ") + week " << args.week
            << " dispatch rows...\n";
  ml::StoreStatus st = features::stream_save_locator_dataset(
      path, sim, tables, exec, train_from, train_to, locator.encoder_config(),
      opts);
  if (!st.ok()) {
    std::cerr << "cannot write " << path << ": " << st.message << "\n";
    return 1;
  }
  if (keep_dataset) {
    std::cerr << "saved locator matrix to " << path << "\n";
  }
  {
    auto loaded =
        features::load_locator_dataset(path, args.dataset_mode, &st);
    if (!loaded.has_value()) {
      std::cerr << "cannot load " << path << ": " << st.message << "\n";
      return 1;
    }
    std::cerr << "training locator from "
              << (loaded->block.dataset.file_backed() ? "mmap'ed" : "loaded")
              << " streamed artefact (" << loaded->block.dataset.n_rows()
              << " dispatches)...\n";
    try {
      locator.train_from_block(tables, loaded->block);
    } catch (const std::invalid_argument& e) {
      std::cerr << "dataset artefact rejected: " << e.what() << "\n";
      return 1;
    }
  }
  if (!keep_dataset) std::filesystem::remove(path);
  if (!args.save_models_dir.empty() &&
      !save_locator(args.save_models_dir, locator)) {
    return 1;
  }

  std::cout << "ticket,line,plan\n";
  for (std::size_t r = 0; r < rank_rows.size(); ++r) {
    const auto& note = tables.notes()[rank_notes[r]];
    const auto plan =
        locator.rank(rank_rows[r], core::LocatorModelKind::kCombined);
    std::cout << note.ticket_id << ',' << note.line << ',';
    for (std::size_t i = 0; i < 5 && i < plan.size(); ++i) {
      if (i != 0) std::cout << '|';
      std::cout << tables.catalog().signature(plan[i].disposition).code;
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_locate(const CliArgs& args) {
  if (args.stream) return cmd_locate_stream(args);
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  std::optional<core::TroubleLocator> locator_opt;
  if (!args.load_models_dir.empty()) {
    locator_opt = load_locator(args.load_models_dir);
    if (!locator_opt.has_value()) return 1;
    std::cerr << "loaded locator (" << locator_opt->covered().size()
              << " dispositions)\n";
  } else {
    core::LocatorConfig cfg;
    cfg.exec = exec;
    cfg.binning = args.binning;
    cfg.min_occurrences = std::max<std::size_t>(6, args.lines / 2000);
    const int train_from = util::test_week_of(util::day_from_date(8, 1));
    const int train_to = util::test_week_of(util::day_from_date(9, 18));
    locator_opt.emplace(cfg);
    if (!args.load_dataset_path.empty()) {
      ml::StoreStatus st;
      auto loaded = features::load_locator_dataset(args.load_dataset_path,
                                                   args.dataset_mode, &st);
      if (!loaded.has_value()) {
        std::cerr << "cannot load dataset " << args.load_dataset_path << ": "
                  << st.message << "\n";
        return 1;
      }
      std::cerr << "training locator from "
                << (loaded->block.dataset.file_backed() ? "mmap'ed"
                                                        : "loaded")
                << " dataset artefact (" << loaded->block.dataset.n_rows()
                << " dispatches)...\n";
      try {
        locator_opt->train_from_block(data, loaded->block);
      } catch (const std::invalid_argument& e) {
        std::cerr << "dataset artefact rejected: " << e.what() << "\n";
        return 1;
      }
    } else {
      std::cerr << "training locator...\n";
      locator_opt->train(data, train_from, train_to);
    }
    if (!args.save_dataset_path.empty()) {
      // Under histogram binning the binary artefact also carries the
      // bin codes (nmarena v2), so a later --load-dataset run can skip
      // re-binning entirely.
      const bool with_bins = args.binning == ml::BinningMode::kHistogram;
      const auto st = features::save_locator_dataset(
          args.save_dataset_path, data, train_from, train_to,
          locator_opt->encoder_config(), with_bins);
      if (!st.ok()) {
        std::cerr << "cannot write dataset " << args.save_dataset_path
                  << ": " << st.message << "\n";
        return 1;
      }
      std::cerr << "saved locator matrix to " << args.save_dataset_path
                << "\n";
    }
    if (!args.save_models_dir.empty() &&
        !save_locator(args.save_models_dir, *locator_opt)) {
      return 1;
    }
  }
  const core::TroubleLocator& locator = *locator_opt;

  const auto block = features::encode_at_dispatch(data, args.week, args.week,
                                                  locator.encoder_config());
  std::cout << "ticket,line,plan\n";
  std::vector<float> row(block.dataset.n_cols());
  for (std::size_t r = 0; r < block.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[block.note_of_row[r]];
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = block.dataset.at(r, j);
    const auto plan = locator.rank(row, core::LocatorModelKind::kCombined);
    std::cout << note.ticket_id << ',' << note.line << ',';
    for (std::size_t i = 0; i < 5 && i < plan.size(); ++i) {
      if (i != 0) std::cout << '|';
      std::cout << data.catalog().signature(plan[i].disposition).code;
    }
    std::cout << '\n';
  }
  return 0;
}

/// The server being drained by the signal handlers. Handlers only call
/// Server::request_stop(), which is async-signal-safe by construction
/// (atomic store + eventfd write).
std::atomic<net::Server*> g_server{nullptr};

void handle_shutdown_signal(int) {
  if (net::Server* server = g_server.load(std::memory_order_acquire)) {
    server->request_stop();
  }
}

/// serve --listen PORT: expose the scoring service on TCP. The store
/// starts empty — measurements and tickets arrive over the wire
/// (INGEST_* ops) — and the model comes from local training or
/// --load-models.
int cmd_serve_listen(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  auto predictor_opt = make_predictor(args, exec, data);
  if (!predictor_opt.has_value()) return 1;

  serve::LineStateStore store(args.shards);
  serve::ModelRegistry registry;
  const std::uint64_t version = registry.publish(predictor_opt->kernel());
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  service_cfg.deadline = std::chrono::milliseconds(args.deadline_ms);
  serve::ScoringService service(store, registry, service_cfg);

  net::ServerConfig server_cfg;
  server_cfg.port = *args.listen_port;
  net::Server server(store, service, registry, server_cfg);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "cannot listen on port " << *args.listen_port << ": "
              << error << "\n";
    return 1;
  }

  g_server.store(&server, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = handle_shutdown_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::cerr << "listening on " << server_cfg.bind_address << ":"
            << server.port() << " (model v" << version << ", "
            << args.shards << " shards); SIGINT/SIGTERM drains and exits\n";
  server.run();
  g_server.store(nullptr, std::memory_order_release);

  const net::ServerStats& stats = server.stats();
  std::cerr << "drained: " << stats.accepted << " connections, "
            << stats.frames_in << " frames in, " << stats.replies_out
            << " replies, " << stats.protocol_errors << " protocol errors, "
            << stats.idle_closed << " idle-closed, " << stats.slow_closed
            << " slow-closed\n";
  return 0;
}

/// "--cluster HOST:PORT,HOST:PORT,..." — node ids are assigned by list
/// position, so every process given the same list derives the same map.
std::vector<cluster::Endpoint> parse_cluster_peers(const std::string& spec) {
  std::vector<cluster::Endpoint> peers;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string item =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) {
      const auto colon = item.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == item.size()) {
        die_usage("--cluster expects HOST:PORT,HOST:PORT,..., got '" + item +
                  "'");
      }
      cluster::Endpoint ep;
      ep.node = static_cast<cluster::NodeId>(peers.size());
      ep.host = item.substr(0, colon);
      ep.port = static_cast<std::uint16_t>(
          parse_uint("--cluster", item.substr(colon + 1).c_str(), 1, 65535));
      peers.push_back(std::move(ep));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (peers.empty()) die_usage("--cluster needs at least one HOST:PORT");
  return peers;
}

/// serve --cluster: coordinate a fleet of `cluster-node` processes —
/// push the trained model and an epoch-1 shard map, replay the feeds
/// through a replicating ShardRouter, and print the merged ranking.
int cmd_serve_cluster(const CliArgs& args) {
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  auto predictor_opt = make_predictor(args, exec, data);
  if (!predictor_opt.has_value()) return 1;

  const std::vector<cluster::Endpoint> peers =
      parse_cluster_peers(args.cluster_peers);
  if (args.replication > peers.size()) {
    die_usage("--replication " + std::to_string(args.replication) +
              " exceeds the " + std::to_string(peers.size()) +
              " nodes in --cluster");
  }
  const cluster::ShardMap map = cluster::make_shard_map(
      peers, static_cast<std::uint32_t>(args.cluster_shards),
      static_cast<std::uint32_t>(args.replication));
  cluster::ShardRouter router(map, {});
  if (!router.connect_all() || !router.push_model(predictor_opt->kernel()) ||
      !router.broadcast_map()) {
    std::cerr << "cluster bootstrap failed: " << router.last_error() << "\n";
    return 1;
  }
  std::cerr << "pushed model + shard map (" << args.cluster_shards
            << " shards, replication " << args.replication << ") to "
            << peers.size() << " nodes; replaying feeds through week "
            << args.week << "...\n";

  // Same feeds ReplayDriver would apply locally: customer-edge tickets
  // through the scored week's Saturday in day order, then every week's
  // measurements.
  const util::Day horizon = util::saturday_of_week(args.week);
  std::vector<std::pair<util::Day, dslsim::LineId>> tickets;
  for (const auto& ticket : data.tickets()) {
    if (ticket.category == dslsim::TicketCategory::kCustomerEdge &&
        ticket.reported <= horizon) {
      tickets.emplace_back(ticket.reported, ticket.line);
    }
  }
  std::stable_sort(
      tickets.begin(), tickets.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [day, line] : tickets) {
    if (!router.ingest_ticket(line, day)) {
      std::cerr << "ingest_ticket failed: " << router.last_error() << "\n";
      return 1;
    }
  }
  for (int week = 0; week <= args.week; ++week) {
    for (std::size_t l = 0; l < data.n_lines(); ++l) {
      serve::LineMeasurement m;
      m.line = static_cast<dslsim::LineId>(l);
      m.week = week;
      m.profile = data.plant(m.line).profile;
      m.metrics = data.measurement(week, m.line);
      if (!router.ingest(m)) {
        std::cerr << "ingest failed: " << router.last_error() << "\n";
        return 1;
      }
    }
  }

  const auto ranked = router.top_n(static_cast<std::uint32_t>(args.top));
  if (!ranked.has_value()) {
    std::cerr << "top_n failed: " << router.last_error() << "\n";
    return 1;
  }
  const cluster::RouterStats& stats = router.stats();
  std::cerr << "ingested " << data.n_lines() << " lines x "
            << (args.week + 1) << " weeks + " << tickets.size()
            << " tickets (" << stats.requests << " requests, "
            << stats.retries << " retries, " << stats.failovers
            << " failovers, " << stats.nodes_marked_dead
            << " nodes marked dead)\n";
  std::cout << "rank,line,dslam,week,score,probability,model_version\n";
  for (std::size_t i = 0; i < ranked->size(); ++i) {
    const auto& s = (*ranked)[i];
    std::cout << i + 1 << ',' << s.line << ','
              << data.topology().dslam_of(s.line) << ',' << s.week << ','
              << s.score << ',' << s.probability << ',' << s.model_version
              << '\n';
  }
  return 0;
}

int cmd_serve(const CliArgs& args) {
  if (!args.cluster_peers.empty() && args.listen_port.has_value()) {
    die_usage("--cluster and --listen are mutually exclusive");
  }
  if (!args.cluster_peers.empty()) return cmd_serve_cluster(args);
  if (args.listen_port.has_value()) return cmd_serve_listen(args);
  if (args.stream) return run_stream_scoring(args, /*serve_format=*/true);
  const exec::ExecContext exec = args.exec();
  const auto data = simulate(args, exec);
  auto predictor_opt = make_predictor(args, exec, data);
  if (!predictor_opt.has_value()) return 1;

  serve::LineStateStore store(args.shards);
  serve::ModelRegistry registry;
  const std::uint64_t version =
      registry.publish(predictor_opt->kernel());
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  serve::ScoringService service(store, registry, service_cfg);

  std::cerr << "replaying feeds through week " << args.week << " ("
            << args.shards << " shards, model v" << version << ")...\n";
  serve::ReplayDriver replay(data, store);
  replay.feed_through(args.week, exec);
  std::cerr << "ingested " << store.measurements_ingested()
            << " measurements, " << store.tickets_ingested()
            << " tickets across " << store.n_lines() << " lines\n";

  const auto ranked = service.top_n(args.top);
  std::cout << "rank,line,dslam,week,score,probability,model_version\n";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::cout << i + 1 << ',' << ranked[i].line << ','
              << data.topology().dslam_of(ranked[i].line) << ','
              << ranked[i].week << ',' << ranked[i].score << ','
              << ranked[i].probability << ',' << ranked[i].model_version
              << '\n';
  }
  return 0;
}

/// loadgen: replay the simulated feeds against a live `serve --listen`
/// server and fetch every score over the wire.
int cmd_loadgen(const CliArgs& args) {
  if (args.port == 0) die_usage("loadgen requires --port");
  const auto data = simulate(args, args.exec());

  net::LoadGenConfig cfg;
  cfg.host = args.host;
  cfg.port = args.port;
  cfg.connections = args.connections;
  cfg.through_week = args.week;
  cfg.top_n = static_cast<std::uint32_t>(args.top);
  std::cerr << "replaying through week " << args.week << " over "
            << cfg.connections << " connections to " << cfg.host << ":"
            << cfg.port << "...\n";
  const net::LoadGenReport report = net::LoadGen(data, cfg).run();
  if (!report.ok) {
    std::cerr << "loadgen failed: " << report.error << "\n";
    return 1;
  }

  const auto ms = [](double s) { return s * 1e3; };
  util::Table ops({"op", "count", "per_s", "p50_ms", "p99_ms"});
  const auto add = [&](const char* name, const net::OpStats& s) {
    if (s.count == 0) return;
    ops.add_row({name, std::to_string(s.count),
                 std::to_string(static_cast<std::uint64_t>(s.per_s())),
                 std::to_string(ms(s.percentile_s(0.50))),
                 std::to_string(ms(s.percentile_s(0.99)))});
  };
  add("ingest", report.ingest);
  add("score", report.score);
  add("ping", report.ping);
  add("top_n", report.top_n);
  ops.print(std::cerr);

  std::cout << "rank,line,week,score,probability,model_version\n";
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const auto& s = report.ranked[i];
    std::cout << i + 1 << ',' << s.line << ',' << s.week << ',' << s.score
              << ',' << s.probability << ',' << s.model_version << '\n';
  }
  return 0;
}

/// The cluster node being stopped by the signal handlers.
/// ClusterNode::request_stop() is async-signal-safe (atomic store +
/// eventfd write through the embedded server).
std::atomic<cluster::ClusterNode*> g_cluster_node{nullptr};

void handle_cluster_shutdown_signal(int) {
  if (cluster::ClusterNode* node =
          g_cluster_node.load(std::memory_order_acquire)) {
    node->request_stop();
  }
}

/// cluster-node: run one member of a serving cluster. The node starts
/// with an empty store, no model, and no shard map — a coordinator
/// (`serve --cluster` or a ShardRouter) pushes both; from then on the
/// beacon heartbeats every peer in the adopted map and routes around
/// deaths on its own.
int cmd_cluster_node(int argc, char** argv) {
  cluster::ClusterNodeConfig cfg;
  bool have_listen = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) die_usage("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--listen") {
      cfg.port =
          static_cast<std::uint16_t>(parse_uint("--listen", value(), 0, 65535));
      have_listen = true;
    } else if (flag == "--node-id") {
      cfg.node_id = static_cast<cluster::NodeId>(
          parse_uint("--node-id", value(), 0, 0xFFFFFFFFULL));
    } else if (flag == "--bind") {
      cfg.bind_address = value();
    } else if (flag == "--shards") {
      cfg.store_shards =
          static_cast<std::size_t>(parse_uint("--shards", value(), 1, 4096));
    } else if (flag == "--heartbeat-ms") {
      cfg.heartbeat_interval = std::chrono::milliseconds(
          parse_uint("--heartbeat-ms", value(), 1, 60'000));
    } else if (flag == "--suspect-ms") {
      cfg.membership.suspect_after = std::chrono::milliseconds(
          parse_uint("--suspect-ms", value(), 1, 600'000));
    } else if (flag == "--dead-ms") {
      cfg.membership.dead_after = std::chrono::milliseconds(
          parse_uint("--dead-ms", value(), 1, 600'000));
    } else {
      die_usage("unknown argument '" + flag + "' for cluster-node");
    }
  }
  if (!have_listen) {
    die_usage("cluster-node requires --listen PORT (0 = ephemeral)");
  }
  if (cfg.membership.dead_after <= cfg.membership.suspect_after) {
    die_usage("--dead-ms must exceed --suspect-ms");
  }

  cluster::ClusterNode node(cfg);
  std::string error;
  if (!node.start(&error)) {
    std::cerr << "cannot start cluster node on " << cfg.bind_address << ":"
              << cfg.port << ": " << error << "\n";
    return 1;
  }

  g_cluster_node.store(&node, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = handle_cluster_shutdown_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::cerr << "cluster node " << cfg.node_id << " listening on "
            << cfg.bind_address << ":" << node.port() << " ("
            << cfg.store_shards
            << " store shards); waiting for a model + shard map push; "
               "SIGINT/SIGTERM drains and exits\n";
  node.wait();
  g_cluster_node.store(nullptr, std::memory_order_release);
  node.stop();

  const cluster::NodeHealth health = node.health_snapshot();
  std::cerr << "stopped: map epoch " << health.map_epoch << ", model v"
            << health.model_version << ", " << health.n_lines << " lines, "
            << health.measurements << " measurements, " << health.tickets
            << " tickets\n";
  return 0;
}

/// dataset FILE [--verify]: open a feature-store artefact (binary via
/// mmap, text via the fallback reader) and print what it holds without
/// training anything. --verify additionally checks every per-column
/// payload checksum on the mapped path.
int cmd_dataset(int argc, char** argv) {
  std::string path;
  bool verify = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (!arg.empty() && arg[0] == '-') {
      die_usage("unknown argument '" + arg + "' for dataset");
    } else if (path.empty()) {
      path = arg;
    } else {
      die_usage("dataset takes exactly one FILE");
    }
  }
  if (path.empty()) die_usage("dataset requires a FILE to inspect");
  if (::access(path.c_str(), R_OK) != 0) {
    std::cerr << "error: cannot read " << path << ": " << std::strerror(errno)
              << "\n";
    return 2;
  }

  const bool binary = ml::is_arena_file(path);
  ml::ArenaLoadOptions opts;
  opts.mode = ml::ArenaLoadMode::kMapped;
  opts.verify_payload = verify;
  ml::StoreStatus st;
  const auto stored = ml::load_arena_auto(path, opts, &st);
  if (!stored.has_value()) {
    std::cerr << "error: " << path << ": " << st.message << " ["
              << ml::store_error_name(st.code) << "]\n";
    return 1;
  }

  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  const ml::FeatureArena& arena = stored->arena;
  std::size_t categorical = 0;
  for (std::size_t j = 0; j < arena.n_cols(); ++j) {
    if (arena.column_info(j).categorical) ++categorical;
  }
  const char* format = !binary             ? "text nmdataset v1"
                       : stored->bins ? "binary nmarena v2"
                                      : "binary nmarena v1";
  std::cout << "file: " << path << " (" << format << ", " << (ec ? 0 : size)
            << " bytes)\n"
            << "kind: "
            << features::dataset_kind(stored->meta).value_or("unknown")
            << "\n"
            << "rows: " << arena.n_rows() << " (" << arena.positives()
            << " positive)\n"
            << "columns: " << arena.n_cols() << " (" << categorical
            << " categorical)\n";
  std::cout << "aux:";
  if (stored->aux_names.empty()) std::cout << " (none)";
  for (const auto& name : stored->aux_names) std::cout << ' ' << name;
  std::cout << "\n"
            << "meta: " << stored->meta.size() << " bytes\n"
            << "backing: " << (arena.file_backed() ? "mmap" : "heap") << "\n";
  if (stored->bins != nullptr) {
    std::cout << "bins: " << stored->bins->n_cols()
              << " columns quantized (max_bins " << stored->bins->max_bins()
              << ")\n";
  }
  if (binary) {
    std::cout << "checksums: "
              << (verify ? "payload verified" : "header/meta/labels verified"
                                                " (use --verify for payload)")
              << "\n";
  }
  return 0;
}

int cmd_summary(const CliArgs& args) {
  const auto data = simulate(args, args.exec());
  const auto tickets = dslsim::summarize_tickets(data);
  const auto measurements = dslsim::summarize_measurements(data);
  std::cout << "customer-edge tickets: " << tickets.edge_total
            << " (dispatched " << tickets.dispatched << "), billing: "
            << tickets.billing_total << "\n"
            << "line-test records: " << measurements.records << ", missing: "
            << util::fmt_percent(measurements.missing_rate) << "\n";
  util::Table loc({"location", "dispatches", "share"});
  for (const auto& ls : dslsim::summarize_locations(data)) {
    loc.add_row({dslsim::major_location_name(ls.location),
                 std::to_string(ls.dispatches), util::fmt_percent(ls.share)});
  }
  loc.print(std::cout);
  return 0;
}

/// Spatial localization demo: simulate a year *with* correlated
/// infrastructure faults turned on (the default rates are 0 so every
/// other command's datasets stay untouched), aggregate per-line
/// evidence up the plant hierarchy for the requested week, and print
/// the network-side findings next to the injected ground truth.
int cmd_spatial(const CliArgs& args) {
  const auto exec = args.exec();
  dslsim::SimConfig cfg = sim_config(args);
  // Demo rates: enough shared-plant events in a year that most weeks
  // have something to localize, without drowning the premise baseline.
  cfg.infra.dslam_outages_per_dslam_year = 0.6;
  cfg.infra.crossbox_events_per_crossbox_year = 0.25;
  cfg.infra.weather_bursts_per_region_year = 1.0;
  cfg.infra.firmware_rollout_start = util::day_from_date(6, 1);
  std::cerr << "simulating " << args.lines << " lines with infrastructure "
            << "events (seed " << args.seed << ")...\n";
  const auto data = dslsim::Simulator(cfg).run(exec);

  const spatial::SpatialAggregator aggregator(data.topology());
  const auto report = aggregator.analyze_week(data, args.week, {}, exec);

  std::cout << "week " << report.week << ": " << report.evaluated
            << " lines evaluated, " << report.anomalous_lines
            << " anomalous (baseline rate "
            << util::fmt_percent(report.baseline_rate) << ")\n\n";

  std::size_t healthy = 0, premise = 0, network = 0;
  for (const auto v : report.verdicts) {
    healthy += v == spatial::LineVerdict::kHealthy ? 1 : 0;
    premise += v == spatial::LineVerdict::kPremise ? 1 : 0;
    network += v == spatial::LineVerdict::kNetwork ? 1 : 0;
  }
  std::cout << "verdicts: " << healthy << " healthy, " << premise
            << " premise-side, " << network << " network-side\n\n";

  util::Table findings({"scope", "id", "lines", "anomalous", "rate",
                        "baseline", "z", "confidence"});
  const std::size_t shown =
      std::min(report.network_findings.size(), args.top);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& f = report.network_findings[i];
    findings.add_row({spatial::group_scope_name(f.scope),
                      std::to_string(f.id), std::to_string(f.lines),
                      std::to_string(f.anomalous), util::fmt_percent(f.rate),
                      util::fmt_percent(f.baseline),
                      util::fmt_double(f.zscore, 1),
                      util::fmt_double(f.confidence, 3)});
  }
  if (report.network_findings.empty()) {
    std::cout << "no network-side findings this week\n";
  } else {
    std::cout << "network-side findings (top " << shown << " of "
              << report.network_findings.size() << "):\n";
    findings.print(std::cout);
  }

  // Injected ground truth active in this week, for eyeballing recall.
  const util::Day week_day = util::saturday_of_week(report.week);
  std::size_t active = 0;
  for (const auto& ev : data.infra_events()) {
    if (week_day < ev.start || week_day >= ev.end) continue;
    ++active;
  }
  std::cout << "\nground truth: " << active
            << " infrastructure event(s) active on test day " << week_day
            << " (of " << data.infra_events().size() << " all year)\n";
  util::Table truth({"kind", "scope", "start", "end", "severity"});
  for (const auto& ev : data.infra_events()) {
    if (week_day < ev.start || week_day >= ev.end) continue;
    truth.add_row({dslsim::infra_event_kind_name(ev.kind),
                   std::to_string(ev.scope), std::to_string(ev.start),
                   std::to_string(ev.end), util::fmt_double(ev.severity, 2)});
  }
  if (active > 0) truth.print(std::cout);
  return 0;
}

void usage() {
  std::cerr
      << "usage: nevermind "
         "<simulate|predict|locate|serve|loadgen|cluster-node|spatial|"
         "summary|dataset> "
         "[--lines N] [--seed S] [--week W] [--top K] [--out DIR] "
         "[--lines-per-dslam L] [--dslams-per-atm D] "
         "[--crossboxes-per-dslam C] "
         "[--model FILE] [--save-models DIR] [--load-models DIR] "
         "[--save-dataset FILE] [--load-dataset FILE] "
         "[--dataset-load eager|mmap] "
         "[--threads T] [--shards P] [--binning exact|hist] "
         "[--simd auto|scalar|avx2] [--stream] [--window-weeks W]\n"
         "  --stream (simulate|predict|locate|serve)   run the streamed "
         "pipeline: weekly measurements are generated, encoded and "
         "consumed chunk-wise through a rolling --window-weeks buffer "
         "(default 8) instead of materializing the year; training goes "
         "through a .nmarena artefact + mmap, and the output is byte-"
         "identical to the materialized command\n"
         "  serve --listen PORT [--deadline-ms D]   expose the scoring "
         "service over TCP (0 = ephemeral port)\n"
         "  loadgen --port P [--host H] [--connections C]   drive a live "
         "server with the simulated feeds\n"
         "  cluster-node --listen PORT [--node-id I] [--bind H] "
         "[--shards P] [--heartbeat-ms H] [--suspect-ms S] [--dead-ms D]"
         "   run one cluster member until SIGINT/SIGTERM\n"
         "  serve --cluster H:P,H:P,... [--cluster-shards K] "
         "[--replication R]   coordinate the listed cluster-node "
         "processes and print the merged ranking\n"
         "  dataset FILE [--verify]   inspect a persisted feature-store "
         "artefact (.nmarena = binary, else text)\n"
         "  spatial [--lines N] [--seed S] [--week W]   simulate with "
         "correlated infrastructure faults and print network-vs-premise "
         "verdicts for week W\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "dataset") return cmd_dataset(argc, argv);
  if (cmd == "cluster-node") return cmd_cluster_node(argc, argv);
  const CliArgs args = parse(argc, argv, 2);
  validate_stream_flags(args, cmd);
  validate_artefact_paths(args, cmd);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "predict") return cmd_predict(args);
  if (cmd == "locate") return cmd_locate(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "loadgen") return cmd_loadgen(args);
  if (cmd == "spatial") return cmd_spatial(args);
  if (cmd == "summary") return cmd_summary(args);
  usage();
  return 2;
}
