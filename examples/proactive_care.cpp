// Proactive care campaign: the operational scenario from the paper's
// introduction. Runs NEVERMIND for several consecutive Saturdays and
// totals the operator-facing outcomes — tickets prevented, silent
// problems fixed, truck-roll hours saved — against a counterfactual
// reactive-only operation.
//
//   $ ./proactive_care [n_lines] [seed] [n_weeks]
#include <cstdlib>
#include <iostream>

#include "core/nevermind.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const std::uint32_t n_lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 15000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;
  const int campaign_weeks = argc > 3 ? std::atoi(argv[3]) : 4;

  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = n_lines;
  std::cout << "Simulating " << n_lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  core::NevermindConfig cfg;
  cfg.predictor.top_n = n_lines / 100;
  cfg.locator.min_occurrences = std::max<std::size_t>(8, n_lines / 2000);
  cfg.atds.weekly_capacity = cfg.predictor.top_n;

  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  std::cout << "Training NEVERMIND (predictor weeks " << train_from << "-"
            << train_to << ")...\n\n";
  core::Nevermind nm(cfg);
  nm.train(data, train_from, train_to, train_from, train_to);

  const int first_week = util::test_week_of(util::day_from_date(10, 31));
  util::Table table({"week", "date", "submitted", "live faults",
                     "tickets prevented", "silent fixed", "clean",
                     "hours (locator)", "hours (prior)"});
  std::size_t total_prevented = 0;
  std::size_t total_silent = 0;
  double total_locator_h = 0.0;
  double total_prior_h = 0.0;
  for (int w = first_week; w < first_week + campaign_weeks; ++w) {
    const core::WeeklyCycle cycle = nm.run_week(data, w);
    const auto& r = cycle.atds;
    table.add_row({std::to_string(w),
                   util::format_date(util::saturday_of_week(w)),
                   std::to_string(r.submitted),
                   std::to_string(r.with_live_fault),
                   std::to_string(r.tickets_prevented),
                   std::to_string(r.silent_fixed),
                   std::to_string(r.clean_dispatches),
                   util::fmt_double(r.locator_minutes / 60.0, 1),
                   util::fmt_double(r.experience_minutes / 60.0, 1)});
    total_prevented += r.tickets_prevented;
    total_silent += r.silent_fixed;
    total_locator_h += r.locator_minutes / 60.0;
    total_prior_h += r.experience_minutes / 60.0;
  }
  table.print(std::cout);

  // Reactive baseline for context: tickets that arrived in the window.
  std::size_t reactive_tickets = 0;
  const util::Day from = util::saturday_of_week(first_week);
  const util::Day to = util::saturday_of_week(first_week + campaign_weeks);
  for (const auto& t : data.tickets()) {
    if (t.category == dslsim::TicketCategory::kCustomerEdge &&
        t.reported >= from && t.reported < to) {
      ++reactive_tickets;
    }
  }

  std::cout << "\nCampaign summary (" << campaign_weeks << " weeks):\n"
            << "  customer tickets in the window (reactive load): "
            << reactive_tickets << "\n"
            << "  tickets prevented proactively: " << total_prevented << " ("
            << util::fmt_percent(static_cast<double>(total_prevented) /
                                 static_cast<double>(std::max<std::size_t>(
                                     reactive_tickets + total_prevented, 1)))
            << " of would-be load)\n"
            << "  silent problems fixed: " << total_silent << "\n"
            << "  dispatch hours with locator vs prior ranking: "
            << util::fmt_double(total_locator_h, 1) << " vs "
            << util::fmt_double(total_prior_h, 1) << " ("
            << util::fmt_percent(
                   1.0 - total_locator_h / std::max(total_prior_h, 1e-9))
            << " saved)\n";
  return 0;
}
