// Model-ops walkthrough: the production lifecycle of a NEVERMIND
// predictor. Train on the modeling side, persist the model bundle to a
// file, reload it on the "scoring side", verify identical rankings,
// then run the drift monitor against later weeks to decide when a
// retrain is due.
//
//   $ ./model_ops [n_lines] [seed]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/monitoring.hpp"
#include "core/ticket_predictor.hpp"
#include "ml/serialization.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const std::uint32_t n_lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = n_lines;
  std::cout << "Simulating " << n_lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  // ---- 1. modeling side: train and persist -----------------------------
  core::PredictorConfig cfg;
  cfg.top_n = n_lines / 100;
  cfg.use_derived_features = false;
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  std::cout << "Training on weeks " << train_from << "-" << train_to
            << "...\n";
  core::TicketPredictor predictor(cfg);
  predictor.train(data, train_from, train_to);

  ml::ModelBundle bundle;
  bundle.model = predictor.model();
  for (const auto& col : predictor.selected_columns()) {
    bundle.feature_names.push_back(col.name);
  }
  const char* path = "/tmp/nevermind_model.txt";
  {
    std::ofstream out(path);
    ml::save_bundle(out, bundle);
  }
  std::cout << "Saved bundle (" << bundle.model.stumps().size()
            << " stumps, " << bundle.feature_names.size() << " features) to "
            << path << "\n";

  // ---- 2. scoring side: reload and verify -------------------------------
  std::ifstream in(path);
  const auto loaded = ml::load_bundle(in);
  if (!loaded.has_value()) {
    std::cerr << "failed to reload bundle\n";
    return 1;
  }
  const int week = util::test_week_of(util::day_from_date(10, 31));
  const features::TicketLabeler labeler{cfg.horizon_days};
  const auto block = features::encode_weeks(
      data, week, week, predictor.full_encoder_config(), labeler);
  const auto selected =
      ml::DatasetView(block.dataset).cols(predictor.selected_features());

  std::size_t mismatches = 0;
  std::vector<float> row(selected.n_cols());
  for (std::size_t r = 0; r < selected.n_rows(); r += 37) {
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = selected.at(r, j);
    if (loaded->model.score_features(row) !=
        predictor.model().score_features(row)) {
      ++mismatches;
    }
  }
  std::cout << "Reloaded model reproduces training-side scores: "
            << (mismatches == 0 ? "YES" : "NO") << "\n\n";

  // ---- 3. drift watch over the following weeks --------------------------
  const auto reference_block = features::encode_weeks(
      data, train_from, train_to, predictor.full_encoder_config(), labeler);
  core::DriftMonitor monitor;
  monitor.fit(ml::DatasetView(reference_block.dataset)
                  .cols(predictor.selected_features()));

  util::Table drift({"week", "date", "max feature PSI", "alerts (>0.25)"});
  for (int w = train_to + 1; w <= week; w += 2) {
    const auto wk = features::encode_weeks(
        data, w, w, predictor.full_encoder_config(), labeler);
    const auto current =
        ml::DatasetView(wk.dataset).cols(predictor.selected_features());
    const auto psi = monitor.column_psi(current);
    double max_psi = 0.0;
    for (double p : psi) max_psi = std::max(max_psi, p);
    drift.add_row({std::to_string(w),
                   util::format_date(util::saturday_of_week(w)),
                   util::fmt_double(max_psi, 3),
                   std::to_string(monitor.alerts(current).size())});
  }
  drift.print(std::cout);
  std::cout << "\nPSI below 0.1 = stable, 0.1-0.25 = watch, above 0.25 = "
               "retrain. On this stationary simulation the stream stays "
               "quiet; plant or firmware changes in a live network would "
               "trip the alerts before accuracy visibly decayed.\n";
  return 0;
}
