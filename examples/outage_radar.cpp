// Outage radar: the §5.2 observation turned into a tool. The number of
// NEVERMIND predictions pointing at a single DSLAM correlates with
// future outage problems there ("we can group predictions by DSLAMs and
// send one truck to resolve most of the problems in a given DSLAM").
// This example ranks DSLAMs by their prediction density for one week
// and checks which of them really had an outage within the next month.
//
//   $ ./outage_radar [n_lines] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/ticket_predictor.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const std::uint32_t n_lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 15000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = n_lines;
  // A livelier outage process makes the radar's purpose visible at
  // example scale.
  sim_cfg.outage_rate_per_dslam_year = 0.6;
  std::cout << "Simulating " << n_lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  core::PredictorConfig cfg;
  cfg.top_n = n_lines / 100;
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  std::cout << "Training ticket predictor...\n";
  core::TicketPredictor predictor(cfg);
  predictor.train(data, train_from, train_to);

  const int week = util::test_week_of(util::day_from_date(10, 31));
  const util::Day day = util::saturday_of_week(week);
  const auto ranked = predictor.predict_week(data, week);

  // Group the top predictions by DSLAM.
  std::map<dslsim::DslamId, int> counts;
  for (std::size_t i = 0; i < cfg.top_n && i < ranked.size(); ++i) {
    ++counts[data.topology().dslam_of(ranked[i].line)];
  }
  std::vector<std::pair<dslsim::DslamId, int>> by_density(counts.begin(),
                                                          counts.end());
  std::sort(by_density.begin(), by_density.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::cout << "\nDSLAMs ranked by prediction density, week " << week << " ("
            << util::format_date(day) << "):\n";
  util::Table table({"DSLAM", "predicted lines", "lines served",
                     "outage within 4 weeks?"});
  std::size_t flagged_with_outage = 0;
  const std::size_t show = std::min<std::size_t>(10, by_density.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto [dslam, count] = by_density[i];
    const bool outage = data.dslam_outage_within(dslam, day, day + 28);
    flagged_with_outage += outage ? 1 : 0;
    table.add_row({std::to_string(dslam), std::to_string(count),
                   std::to_string(data.topology().lines_of_dslam(dslam).size()),
                   outage ? "YES" : "-"});
  }
  table.print(std::cout);

  // Base rate for comparison.
  std::size_t outage_dslams = 0;
  for (dslsim::DslamId d = 0; d < data.topology().n_dslams(); ++d) {
    outage_dslams += data.dslam_outage_within(d, day, day + 28) ? 1 : 0;
  }
  const double base_rate = static_cast<double>(outage_dslams) /
                           static_cast<double>(data.topology().n_dslams());
  std::cout << "\nTop-" << show << " flagged DSLAMs with a real outage: "
            << flagged_with_outage << " ("
            << util::fmt_percent(static_cast<double>(flagged_with_outage) /
                                 static_cast<double>(show))
            << ") vs base rate "
            << util::fmt_percent(base_rate)
            << " across all DSLAMs — group dispatches accordingly.\n";
  return 0;
}
