// Quickstart: simulate a small DSL footprint, train NEVERMIND, and run
// one proactive week end-to-end.
//
//   $ ./quickstart [n_lines] [seed]
//
// Walks through the whole public API: dslsim::Simulator ->
// core::Nevermind (ticket predictor + trouble locator + ATDS) and
// prints what an operator would see on a Saturday night: the top
// predicted lines, and the outcome of dispatching them proactively.
#include <cstdlib>
#include <iostream>

#include "core/nevermind.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const std::uint32_t n_lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // ---- 1. simulate a year of network + customer activity -------------
  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = n_lines;
  std::cout << "Simulating " << n_lines << " DSL lines over "
            << sim_cfg.n_weeks << " weeks (seed " << seed << ")...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  std::size_t edge = 0;
  for (const auto& t : data.tickets()) {
    edge += t.category == dslsim::TicketCategory::kCustomerEdge ? 1 : 0;
  }
  std::cout << "  tickets: " << data.tickets().size() << " (" << edge
            << " customer-edge), outages: " << data.outages().size()
            << ", fault episodes: " << data.episodes().size() << "\n\n";

  // ---- 2. train NEVERMIND --------------------------------------------
  core::NevermindConfig cfg;
  cfg.predictor.top_n = n_lines / 100;  // ~1% weekly budget, like 20K/2M
  cfg.atds.weekly_capacity = cfg.predictor.top_n;

  // Paper splits: predictor trains on Aug-Sep measurements, locator on
  // dispatches 08/01-09/18.
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 30));
  const int locator_to = util::test_week_of(util::day_from_date(9, 18));

  std::cout << "Training ticket predictor on weeks " << train_from << "-"
            << train_to << " and trouble locator on dispatches in weeks "
            << train_from << "-" << locator_to << "...\n";
  core::Nevermind nm(cfg);
  nm.train(data, train_from, train_to, train_from, locator_to);
  std::cout << "  selected " << nm.predictor().selected_features().size()
            << " features; locator covers " << nm.locator().covered().size()
            << " dispositions\n\n";

  // ---- 3. one proactive Saturday --------------------------------------
  const int week = util::test_week_of(util::day_from_date(10, 31));
  const core::WeeklyCycle cycle = nm.run_week(data, week);

  util::Table top({"rank", "line", "P(ticket in 4w)"});
  for (std::size_t i = 0; i < 10 && i < cycle.predictions.size(); ++i) {
    top.add_row({std::to_string(i + 1),
                 std::to_string(cycle.predictions[i].line),
                 util::fmt_double(cycle.predictions[i].probability, 3)});
  }
  std::cout << "Top predicted lines for week " << week << " ("
            << util::format_date(util::saturday_of_week(week)) << "):\n";
  top.print(std::cout);

  const auto& r = cycle.atds;
  std::cout << "\nProactive dispatch outcome (top " << r.submitted
            << " predictions):\n"
            << "  live fault found on site : " << r.with_live_fault << "\n"
            << "  future tickets prevented : " << r.tickets_prevented << "\n"
            << "  silent problems fixed    : " << r.silent_fixed << "\n"
            << "  would-have-ticketed      : " << r.would_ticket << " ("
            << util::fmt_percent(static_cast<double>(r.would_ticket) /
                                 static_cast<double>(std::max<std::size_t>(
                                     r.submitted, 1)))
            << " precision)\n"
            << "  clean dispatches         : " << r.clean_dispatches << "\n"
            << "  dispatch hours (locator / experience ranking): "
            << util::fmt_double(r.locator_minutes / 60.0, 1) << " / "
            << util::fmt_double(r.experience_minutes / 60.0, 1) << "\n";
  return 0;
}
