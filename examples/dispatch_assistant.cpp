// Dispatch assistant: what a field technician sees before a truck roll
// (paper Section 6 / Fig 9). For a handful of real dispatches from the
// simulated ticket stream, prints the trouble locator's ranked test
// plan under all three models and — for the top hypothesis — a Fig-9
// style explanation of which line features drove the score.
//
//   $ ./dispatch_assistant [n_lines] [seed]
#include <cstdlib>
#include <iostream>

#include "core/explain.hpp"
#include "core/trouble_locator.hpp"
#include "features/encoder.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const std::uint32_t n_lines =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 15000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = n_lines;
  std::cout << "Simulating " << n_lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  core::LocatorConfig cfg;
  cfg.min_occurrences = std::max<std::size_t>(8, n_lines / 2000);
  const int train_from = util::test_week_of(util::day_from_date(8, 1));
  const int train_to = util::test_week_of(util::day_from_date(9, 18));
  std::cout << "Training trouble locator on dispatch weeks " << train_from
            << "-" << train_to << " (" << cfg.min_occurrences
            << "+ occurrences per disposition)...\n";
  core::TroubleLocator locator(cfg);
  locator.train(data, train_from, train_to);
  std::cout << "Locator covers " << locator.covered().size()
            << " dispositions.\n";

  // Take a few test-period dispatches to walk through.
  const int test_from = train_to + 1;
  const int test_to = test_from + 6;
  const auto block =
      features::encode_at_dispatch(data, test_from, test_to, cfg.encoder);
  const auto columns = features::all_columns(cfg.encoder);

  std::size_t shown = 0;
  std::vector<float> row(block.dataset.n_cols());
  for (std::size_t r = 0; r < block.dataset.n_rows() && shown < 3; r += 17) {
    const auto& note = data.notes()[block.note_of_row[r]];
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = block.dataset.at(r, j);
    // Walk-throughs are clearer on dispatches whose Saturday test
    // reached the modem (non-missing record).
    if (row[0] < 0.5F) continue;

    const auto& truth = data.catalog().signature(note.disposition);
    std::cout << "\n==== Dispatch for ticket #" << note.ticket_id << ", line "
              << note.line << ", "
              << util::format_date(note.dispatch_day) << " ====\n"
              << "(ground truth, revealed after the dispatch: " << truth.code
              << " — " << truth.description << ")\n\n";

    util::Table plan({"rank", "combined model", "P", "flat model",
                      "experience"});
    const auto combined = locator.rank(row, core::LocatorModelKind::kCombined);
    const auto flat = locator.rank(row, core::LocatorModelKind::kFlat);
    const auto prior = locator.rank(row, core::LocatorModelKind::kExperience);
    for (std::size_t i = 0; i < 6 && i < combined.size(); ++i) {
      plan.add_row(
          {std::to_string(i + 1),
           data.catalog().signature(combined[i].disposition).code,
           util::fmt_double(combined[i].probability, 3),
           data.catalog().signature(flat[i].disposition).code,
           data.catalog().signature(prior[i].disposition).code});
    }
    plan.print(std::cout);

    std::cout << "tests until the true disposition: combined "
              << locator.rank_of(row, note.disposition,
                                 core::LocatorModelKind::kCombined)
              << ", flat "
              << locator.rank_of(row, note.disposition,
                                 core::LocatorModelKind::kFlat)
              << ", experience "
              << locator.rank_of(row, note.disposition,
                                 core::LocatorModelKind::kExperience)
              << "\n";

    // Fig-9 style decomposition: which measured features drove the top
    // hypothesis's disposition score and its parent-location score.
    const auto& top = combined.front();
    const auto& top_sig = data.catalog().signature(top.disposition);
    if (const ml::BStumpModel* flat_model =
            locator.flat_model(top.disposition)) {
      std::cout << "\nWhy " << top_sig.code << "? f_Cij ";
      core::print_explanation(
          std::cout, core::explain_score(*flat_model, row, columns, 5), 5);
      std::cout << "parent location f_Ci. ("
                << dslsim::major_location_name(top_sig.location) << ") ";
      core::print_explanation(
          std::cout,
          core::explain_score(locator.location_model(top_sig.location), row,
                              columns, 5),
          5);
    }
    ++shown;
  }

  std::cout << "\nThe technician follows the combined-model column top to "
               "bottom, skipping whole locations it rules out — the paper's "
               "time saving in Section 6.3.\n";
  return 0;
}
