// Allocation and peak-RSS instrumentation for the memory benches.
//
// Two independent signals, because they fail differently:
//   - cumulative bytes handed out by the global allocator — a
//     driver-independent measure of allocation churn that cannot be
//     confused by the OS reusing pages;
//   - VmHWM (peak resident set) from /proc/self/status — what an
//     operator actually pays for, resettable between phases by writing
//     "5" to /proc/self/clear_refs (monotone for the process lifetime
//     when the kernel does not support the reset).
//
// The byte counter only ticks when exactly one translation unit of the
// binary defines NEVERMIND_MEMPROBE_IMPL before including this header:
// that TU receives the replacement global operator new/delete. Binaries
// that skip the define still link and run; bytes_allocated() just stays
// at zero.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace nevermind::bench::memprobe {

inline std::atomic<std::uint64_t> g_bytes_allocated{0};

/// Cumulative bytes requested from the global allocator since process
/// start (0 unless NEVERMIND_MEMPROBE_IMPL was defined in one TU).
inline std::uint64_t bytes_allocated() noexcept {
  return g_bytes_allocated.load(std::memory_order_relaxed);
}

namespace detail {
inline std::uint64_t status_field_bytes(const char* key,
                                        std::size_t key_len) noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace detail

/// Peak resident set size (VmHWM) in bytes; 0 when /proc is absent.
inline std::uint64_t peak_rss_bytes() noexcept {
  return detail::status_field_bytes("VmHWM:", 6);
}

/// Current resident set size (VmRSS) in bytes; 0 when /proc is absent.
inline std::uint64_t current_rss_bytes() noexcept {
  return detail::status_field_bytes("VmRSS:", 6);
}

/// Resets the kernel's peak-RSS watermark to the current RSS so the
/// next peak_rss_bytes() reading covers only the phase that follows.
/// Returns false when the kernel does not expose the reset, in which
/// case VmHWM stays monotone — order phases so the comparison still
/// holds (measure the expected-smaller phase first).
inline bool reset_peak_rss() noexcept {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

/// A phase peak-RSS sample: `bytes` is the peak attributable to the
/// phase, `exact` says whether the kernel watermark reset was available.
struct PhasePeak {
  std::uint64_t bytes = 0;
  bool exact = true;
};

/// Scoped peak-RSS measurement for one phase of a bench. Construction
/// attempts the clear_refs watermark reset; when the kernel (or a
/// container's proc restrictions) refuses it, sample() degrades to the
/// growth of VmHWM/VmRSS over the phase and flags the result as
/// approximate instead of reporting a process-lifetime peak as if it
/// were the phase's.
class PhaseRssProbe {
 public:
  PhaseRssProbe() noexcept
      : exact_(reset_peak_rss()),
        baseline_hwm_(exact_ ? 0 : peak_rss_bytes()),
        baseline_rss_(current_rss_bytes()) {}

  /// Peak RSS the phase added over the RSS at construction. Exact mode
  /// reads the reset watermark; approximate mode reports how much the
  /// monotone watermark (or, when the phase stayed under an earlier
  /// peak, current RSS) grew over the phase.
  [[nodiscard]] PhasePeak sample() const noexcept {
    if (exact_) {
      const std::uint64_t peak = peak_rss_bytes();
      return {peak > baseline_rss_ ? peak - baseline_rss_ : 0, true};
    }
    const std::uint64_t hwm = peak_rss_bytes();
    const std::uint64_t rss = current_rss_bytes();
    const std::uint64_t hwm_delta =
        hwm > baseline_hwm_ ? hwm - baseline_hwm_ : 0;
    const std::uint64_t rss_delta =
        rss > baseline_rss_ ? rss - baseline_rss_ : 0;
    return {hwm_delta > rss_delta ? hwm_delta : rss_delta, false};
  }

  [[nodiscard]] bool exact() const noexcept { return exact_; }

 private:
  bool exact_;
  std::uint64_t baseline_hwm_;
  std::uint64_t baseline_rss_;
};

}  // namespace nevermind::bench::memprobe

#ifdef NEVERMIND_MEMPROBE_IMPL

namespace {

void* memprobe_alloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    if (posix_memalign(&p, align, size) != 0) p = nullptr;
  } else {
    p = std::malloc(size);
  }
  if (p == nullptr) throw std::bad_alloc();
  nevermind::bench::memprobe::g_bytes_allocated.fetch_add(
      size, std::memory_order_relaxed);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return memprobe_alloc(size, 0); }
void* operator new[](std::size_t size) { return memprobe_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t al) {
  return memprobe_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return memprobe_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // NEVERMIND_MEMPROBE_IMPL
