// Reproduces Fig 7: ticket-prediction accuracy vs number of top
// predictions selected, with and without derived (quadratic + product)
// features. Paper headline: 37.8% precision at the 20K budget with
// history+customer features, boosted to ~40% by derived features; two
// true predictions for every three incorrect at the budget.
#include <iostream>

#include "bench_common.hpp"
#include "ml/metrics.hpp"

using namespace nevermind;

namespace {

std::vector<double> accuracy_curve(const dslsim::SimDataset& data,
                                   const bench::PaperSplits& splits,
                                   core::PredictorConfig cfg,
                                   std::span<const std::size_t> cutoffs) {
  core::TicketPredictor predictor(cfg);
  predictor.train(data, splits.train_from, splits.train_to);

  const features::TicketLabeler labeler{cfg.horizon_days};
  const features::EncodedBlock test =
      features::encode_weeks(data, splits.test_from, splits.test_to,
                             predictor.full_encoder_config(), labeler);
  const std::vector<double> scores = predictor.score_block(test);
  return ml::precision_curve(scores, test.dataset.labels(), cutoffs);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Fig 7 — prediction accuracy vs #predictions, with and "
                     "without derived features");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;

  const std::size_t top_n = bench::scaled_top_n(args.n_lines);
  const int n_test_weeks = splits.test_to - splits.test_from + 1;
  // Pooled test rows = lines x 4 weeks; budget-equivalent cutoffs scale
  // by the number of pooled weeks.
  const std::size_t rows =
      static_cast<std::size_t>(args.n_lines) *
      static_cast<std::size_t>(n_test_weeks);
  const auto cutoffs = bench::budget_cutoffs(
      top_n * static_cast<std::size_t>(n_test_weeks), rows);

  core::PredictorConfig base_cfg;
  base_cfg.top_n = top_n;
  base_cfg.use_derived_features = false;

  core::PredictorConfig full_cfg = base_cfg;
  full_cfg.use_derived_features = true;

  std::cout << "training predictor without derived features...\n";
  const auto base_curve = accuracy_curve(data, splits, base_cfg, cutoffs);
  std::cout << "training predictor with derived features...\n";
  const auto full_curve = accuracy_curve(data, splits, full_cfg, cutoffs);

  util::Table table({"#predictions", "x budget", "history+customer",
                     "all selected features"});
  const auto budget =
      static_cast<double>(top_n) * static_cast<double>(n_test_weeks);
  for (std::size_t i = 0; i < cutoffs.size(); ++i) {
    table.add_row({std::to_string(cutoffs[i]),
                   util::fmt_double(static_cast<double>(cutoffs[i]) / budget, 2),
                   util::fmt_percent(base_curve[i]),
                   util::fmt_percent(full_curve[i])});
  }
  table.print(std::cout);

  const std::size_t at_budget =
      std::min<std::size_t>(static_cast<std::size_t>(budget), rows);
  std::cout << "\nPaper at the 20K budget: 37.8% (history+customer) -> 40.0% "
               "(with derived); here at N="
            << at_budget << ": "
            << util::fmt_percent(base_curve[2]) << " -> "
            << util::fmt_percent(full_curve[2]) << "\n";
  return 0;
}
