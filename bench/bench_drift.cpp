// Benchmark and correctness gate for the spatial localization layer
// and the closed drift -> retrain -> hot-swap loop:
//
//  1. spatial-vs-locator — simulate a year with scripted shared-plant
//     events (a DSLAM outage and a crossbox/F1 degradation active on
//     the evaluation Saturday), then rank every line by (a) the
//     SpatialAggregator's network confidence and (b) the per-line
//     trouble locator's P(F1)+P(DS). Ground truth is the injected
//     event footprint; the spatial stage must beat the per-line
//     baseline on AUC (that co-impairment signal is the whole point of
//     aggregating up the hierarchy) — exit 1 otherwise;
//  2. drift loop — the same dataset carries environment drift (plant
//     aging + a seasonal noise cycle) starting mid-year. Replay the
//     serving stack week by week with a RetrainOrchestrator watching
//     selected-feature PSI: it must fire a drift-triggered retrain
//     (exit 1 if it never does), hot-swap the fresh kernel into the
//     ModelRegistry mid-replay, and the whole loop — decisions, model
//     versions, and every served score — must be byte-identical at
//     threads {1, 8} (exit 1 on any mismatch). Reports the detection
//     lag in weeks and the AUC the retrained loop recovers over a
//     frozen bootstrap model on the post-retrain weeks.
//
// Writes BENCH_drift.json (detection_lag_weeks is a lower-is-better
// field under tools/check_bench.py; replay timings are *_s).
//
// Usage: bench_drift [--lines N] [--seed S] [--rounds R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/retrain.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "features/encoder.hpp"
#include "ml/metrics.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "spatial/aggregator.hpp"
#include "util/calendar.hpp"

namespace {

using namespace nevermind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kTrainFrom = 22;
constexpr int kFirstWeek = 31;   // bootstrap trains on [22, 30]
constexpr int kLastWeek = 47;
constexpr int kOnsetWeek = 34;   // environment drift starts here
constexpr int kSpatialWeek = 37; // scripted events active this Saturday

/// One replayed week of the drift loop, for cross-thread comparison.
struct WeekTrace {
  core::RetrainDecision decision;
  std::vector<serve::ServeScore> scores;  // all lines, ascending id
};

struct LoopResult {
  std::vector<WeekTrace> weeks;
  /// Week of the first drift-triggered retrain, or -1.
  int drift_retrain_week = -1;
  std::size_t retrains = 0;
  double wall_s = 0.0;
};

/// Run the closed loop at one thread count: bootstrap the orchestrator,
/// replay the feeds, let PSI alerts retrain and hot-swap mid-replay,
/// and record every decision and served score.
LoopResult run_loop(const dslsim::SimDataset& data, std::size_t threads,
                    std::size_t rounds) {
  const exec::ExecContext exec =
      threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();

  core::PredictorConfig pred_cfg;
  pred_cfg.exec = exec;
  pred_cfg.boost_iterations = rounds;

  core::RetrainPolicy policy;
  policy.training_window_weeks = kFirstWeek - kTrainFrom;
  policy.retrain_every_weeks = 0;  // drift trigger only
  // One strongly drifted column (threshold 0.35, above the 0.25
  // convention, to duck small-sample jitter) held for two consecutive
  // weeks fires the retrain.
  policy.psi_alert_threshold = 0.35;
  policy.drift_min_alerts = 1;
  policy.drift_patience_weeks = 2;
  policy.drift_cooldown_weeks = 3;

  serve::LineStateStore store(16);
  serve::ModelRegistry registry;
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  serve::ScoringService service(store, registry, service_cfg);
  serve::ReplayDriver replay(data, store);

  core::RetrainOrchestrator orchestrator(policy, pred_cfg);
  orchestrator.set_publish_hook(
      [&](const core::ScoringKernel& kernel) { registry.publish(kernel); });

  std::vector<dslsim::LineId> all_lines(data.n_lines());
  for (std::size_t u = 0; u < all_lines.size(); ++u) {
    all_lines[u] = static_cast<dslsim::LineId>(u);
  }

  LoopResult result;
  const auto start = Clock::now();
  orchestrator.bootstrap(data, kFirstWeek);
  replay.feed_through(kFirstWeek - 1, exec);
  for (int week = kFirstWeek; week <= kLastWeek; ++week) {
    WeekTrace trace;
    // The orchestrator may retrain here — publishing through the hook
    // swaps the registry's model while the replay is mid-stream.
    trace.decision = orchestrator.observe_week(data, week);
    if (trace.decision.retrained) {
      ++result.retrains;
      if (trace.decision.trigger == core::RetrainTrigger::kDrift &&
          result.drift_retrain_week < 0) {
        result.drift_retrain_week = week;
      }
    }
    replay.feed_through(week, exec);
    trace.scores = service.score_lines(all_lines);
    result.weeks.push_back(std::move(trace));
  }
  result.wall_s = seconds_since(start);
  return result;
}

bool loops_identical(const LoopResult& a, const LoopResult& b) {
  if (a.weeks.size() != b.weeks.size()) return false;
  for (std::size_t w = 0; w < a.weeks.size(); ++w) {
    const auto& da = a.weeks[w].decision;
    const auto& db = b.weeks[w].decision;
    if (da.week != db.week || da.trigger != db.trigger ||
        da.retrained != db.retrained || da.drift_alerts != db.drift_alerts ||
        da.max_psi != db.max_psi) {
      return false;
    }
    const auto& sa = a.weeks[w].scores;
    const auto& sb = b.weeks[w].scores;
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].line != sb[i].line || sa[i].week != sb[i].week ||
          sa[i].score != sb[i].score ||
          sa[i].probability != sb[i].probability ||
          sa[i].model_version != sb[i].model_version ||
          sa[i].valid != sb[i].valid) {
        return false;
      }
    }
  }
  return true;
}

/// Mean per-week ticket-prediction AUC over [from, to], scoring with
/// `score_of(week, line)`; weeks without both classes are skipped.
template <typename ScoreFn>
double mean_week_auc(const dslsim::SimDataset& data, int from, int to,
                     int horizon_days, ScoreFn&& score_of) {
  const features::TicketLabeler labeler{horizon_days};
  double total = 0.0;
  int weeks = 0;
  for (int week = from; week <= to; ++week) {
    const util::Day day = util::saturday_of_week(week);
    std::vector<double> scores;
    std::vector<std::uint8_t> labels;
    scores.reserve(data.n_lines());
    labels.reserve(data.n_lines());
    for (dslsim::LineId u = 0; u < data.n_lines(); ++u) {
      scores.push_back(score_of(week, u));
      labels.push_back(labeler(data, u, day) ? 1 : 0);
    }
    const std::size_t pos =
        static_cast<std::size_t>(std::count(labels.begin(), labels.end(), 1));
    if (pos == 0 || pos == labels.size()) continue;
    total += ml::auc(scores, labels);
    ++weeks;
  }
  return weeks > 0 ? total / weeks : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t lines = 4000;
  std::uint64_t seed = 42;
  std::size_t rounds = 120;
  std::string out_path = "BENCH_drift.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--lines")) {
      lines = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--rounds")) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }

  const exec::ExecContext exec(2);

  // A year with concept drift from week 34 (aggressive plant aging plus
  // a seasonal noise cycle cresting late in the year) and two scripted
  // shared-plant events straddling week 37's Saturday: a full outage of
  // DSLAM 1 and an F1 degradation of the first crossbox under DSLAM 3.
  dslsim::SimConfig cfg;
  cfg.seed = seed;
  cfg.topology.n_lines = lines;
  // Aging is the drift the monitor must catch; the seasonal cycle is
  // kept gentle with its steep flank *after* the onset so the weeks
  // between bootstrap and onset are genuinely stationary (the
  // detection lag then measures the aging response, not a mislabeled
  // seasonal ramp).
  cfg.drift.plant_aging_db_per_year = 18.0;
  cfg.drift.onset_day = util::saturday_of_week(kOnsetWeek);
  cfg.drift.seasonal_noise_amp_db = 1.5;
  cfg.drift.seasonal_peak_day = 340;
  const util::Day spatial_day = util::saturday_of_week(kSpatialWeek);
  cfg.scripted_infra.push_back({dslsim::InfraEventKind::kDslamOutage, 1,
                                spatial_day - 2, spatial_day + 2, 1.3F});
  cfg.scripted_infra.push_back(
      {dslsim::InfraEventKind::kCrossboxDegradation,
       3 * cfg.topology.crossboxes_per_dslam, spatial_day - 17,
       spatial_day + 9, 1.4F});
  std::cerr << "simulating " << lines << " lines with drift + scripted "
            << "infrastructure events...\n";
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run(exec);

  std::size_t truth_lines = 0;
  for (dslsim::LineId u = 0; u < data.n_lines(); ++u) {
    truth_lines += data.infra_active(u, spatial_day) ? 1 : 0;
  }

  // ---- 1. spatial stage vs the per-line locator baseline --------------
  core::LocatorConfig loc_cfg;
  loc_cfg.exec = exec;
  loc_cfg.boost_iterations = rounds;
  std::cerr << "training locator (" << rounds << " rounds)...\n";
  core::TroubleLocator locator(loc_cfg);
  locator.train(data, kTrainFrom, kFirstWeek - 1);

  // Per-line network evidence: P(F1) + P(DSLAM) from the locator over
  // every line's week-37 feature row.
  std::vector<double> locator_network(data.n_lines(), 0.0);
  {
    const features::TicketLabeler labeler{28};
    const auto block = features::encode_weeks(
        data, kSpatialWeek, kSpatialWeek, locator.encoder_config(), labeler);
    std::vector<float> row(block.dataset.n_cols());
    for (std::size_t r = 0; r < block.dataset.n_rows(); ++r) {
      for (std::size_t j = 0; j < row.size(); ++j) {
        row[j] = block.dataset.at(r, j);
      }
      double network = 0.0;
      for (const auto& ranked : locator.rank_locations(row)) {
        if (ranked.location == dslsim::MajorLocation::kF1 ||
            ranked.location == dslsim::MajorLocation::kDslam) {
          network += ranked.probability;
        }
      }
      locator_network[block.line_of_row[r]] = network;
    }
  }

  const spatial::SpatialAggregator aggregator(data.topology());
  const auto report = aggregator.analyze_week(data, kSpatialWeek, {}, exec);

  std::vector<double> spatial_scores(data.n_lines());
  std::vector<std::uint8_t> truth(data.n_lines());
  for (dslsim::LineId u = 0; u < data.n_lines(); ++u) {
    spatial_scores[u] = report.line_confidence[u];
    truth[u] = data.infra_active(u, spatial_day) ? 1 : 0;
  }
  const double spatial_auc = ml::auc(spatial_scores, truth);
  const double locator_auc = ml::auc(locator_network, truth);
  const bool spatial_wins = spatial_auc > locator_auc;
  std::cerr << "spatial AUC " << spatial_auc << " vs per-line locator "
            << locator_auc << " (" << truth_lines << " affected lines): "
            << (spatial_wins ? "ok" : "SPATIAL DOES NOT BEAT BASELINE")
            << "\n";

  // ---- 2. the drift -> retrain -> hot-swap loop at threads {1, 8} -----
  std::cerr << "replaying drift loop (threads 1)...\n";
  const LoopResult loop1 = run_loop(data, 1, rounds);
  std::cerr << "replaying drift loop (threads 8)...\n";
  const LoopResult loop8 = run_loop(data, 8, rounds);
  const bool deterministic = loops_identical(loop1, loop8);
  for (const auto& trace : loop1.weeks) {
    std::cerr << "  week " << trace.decision.week << ": max_psi "
              << trace.decision.max_psi << ", alerts "
              << trace.decision.drift_alerts
              << (trace.decision.retrained
                      ? std::string(" -> retrain (") +
                            core::retrain_trigger_name(
                                trace.decision.trigger) +
                            ")"
                      : "")
              << "\n";
  }
  const bool drift_fired = loop1.drift_retrain_week >= 0;
  const int detection_lag =
      drift_fired ? loop1.drift_retrain_week - kOnsetWeek : -1;
  std::cerr << "drift retrain at week "
            << (drift_fired ? std::to_string(loop1.drift_retrain_week)
                            : std::string("NEVER"))
            << " (onset " << kOnsetWeek << "), " << loop1.retrains
            << " retrain(s), cross-thread "
            << (deterministic ? "ok" : "MISMATCH") << "\n";

  // AUC recovery on the weeks after the first drift retrain: the live
  // loop's served scores (fresh models) vs a frozen copy of the
  // bootstrap model that never retrained.
  double auc_stale = 0.0;
  double auc_retrained = 0.0;
  if (drift_fired) {
    core::PredictorConfig stale_cfg;
    stale_cfg.exec = exec;
    stale_cfg.boost_iterations = rounds;
    core::TicketPredictor stale(stale_cfg);
    stale.train(data, kTrainFrom, kFirstWeek - 1);

    const int eval_from = loop1.drift_retrain_week;
    std::vector<std::vector<double>> stale_scores;
    for (int week = eval_from; week <= kLastWeek; ++week) {
      const auto preds = stale.predict_week(data, week);
      std::vector<double> by_line(data.n_lines(), 0.0);
      for (const auto& p : preds) by_line[p.line] = p.score;
      stale_scores.push_back(std::move(by_line));
    }
    auc_stale = mean_week_auc(
        data, eval_from, kLastWeek, stale.config().horizon_days,
        [&](int week, dslsim::LineId u) {
          return stale_scores[static_cast<std::size_t>(week - eval_from)][u];
        });
    auc_retrained = mean_week_auc(
        data, eval_from, kLastWeek, stale.config().horizon_days,
        [&](int week, dslsim::LineId u) {
          const auto& trace =
              loop1.weeks[static_cast<std::size_t>(week - kFirstWeek)];
          return trace.scores[u].score;
        });
    std::cerr << "post-retrain AUC: stale " << auc_stale << " vs live loop "
              << auc_retrained << "\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"drift\",\n"
       << "  \"lines\": " << lines << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"spatial\": {\n"
       << "    \"eval_week\": " << kSpatialWeek << ",\n"
       << "    \"truth_lines\": " << truth_lines << ",\n"
       << "    \"spatial_auc\": " << spatial_auc << ",\n"
       << "    \"locator_auc\": " << locator_auc << ",\n"
       << "    \"network_findings\": " << report.network_findings.size()
       << ",\n"
       << "    \"spatial_beats_locator\": "
       << (spatial_wins ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"drift\": {\n"
       << "    \"onset_week\": " << kOnsetWeek << ",\n"
       << "    \"retrain_week\": " << loop1.drift_retrain_week << ",\n"
       << "    \"detection_lag_weeks\": " << detection_lag << ",\n"
       << "    \"retrains\": " << loop1.retrains << ",\n"
       << "    \"auc_stale\": " << auc_stale << ",\n"
       << "    \"auc_retrained\": " << auc_retrained << ",\n"
       << "    \"auc_recovery\": " << auc_retrained - auc_stale << ",\n"
       << "    \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "    \"replay_1t_s\": " << loop1.wall_s << ",\n"
       << "    \"replay_8t_s\": " << loop8.wall_s << "\n"
       << "  }\n}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();
  if (!spatial_wins) {
    std::cerr << "ERROR: spatial stage does not beat the per-line locator "
              << "on network-side fault identification\n";
    return 1;
  }
  if (!drift_fired) {
    std::cerr << "ERROR: PSI monitor never triggered a retrain under "
              << "injected drift\n";
    return 1;
  }
  if (!deterministic) {
    std::cerr << "ERROR: drift loop differs between threads 1 and 8\n";
    return 1;
  }
  return 0;
}
