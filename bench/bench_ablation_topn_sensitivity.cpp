// Ablation A2 (design choice §4.3): sensitivity of the top-N AP
// selection criterion to its N parameter. The paper notes N "is a
// tunable parameter, which can be enlarged when more predictions can be
// accommodated by ATDS" — this sweep shows how the achieved accuracy at
// the real budget varies when selection optimizes for a different N.
#include <iostream>

#include "bench_common.hpp"
#include "ml/metrics.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 12000);
  util::print_banner(std::cout,
                     "Ablation A2 — sensitivity of top-N AP selection to N");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t budget = bench::scaled_top_n(args.n_lines);
  const int n_test_weeks = splits.test_to - splits.test_from + 1;
  const std::size_t eval_cutoff =
      budget * static_cast<std::size_t>(n_test_weeks);

  util::Table table({"selection N (x budget)", "#features",
                     "accuracy at 1x budget"});
  for (const double multiple : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::PredictorConfig cfg;
    cfg.top_n = std::max<std::size_t>(
        static_cast<std::size_t>(multiple * static_cast<double>(budget)), 5);
    cfg.use_derived_features = false;
    std::cout << "training with selection N = " << cfg.top_n << "/week...\n";
    core::TicketPredictor predictor(cfg);
    predictor.train(data, splits.train_from, splits.train_to);

    const features::TicketLabeler labeler{cfg.horizon_days};
    const auto test =
        features::encode_weeks(data, splits.test_from, splits.test_to,
                               predictor.full_encoder_config(), labeler);
    const auto scores = predictor.score_block(test);
    const std::size_t cuts[] = {eval_cutoff};
    const auto prec = ml::precision_curve(scores, test.dataset.labels(), cuts);
    table.add_row({util::fmt_double(multiple, 2) + "x",
                   std::to_string(predictor.selected_features().size()),
                   util::fmt_percent(prec[0])});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: accuracy at the budget peaks when the "
               "selection N matches the deployment budget (the paper's "
               "rationale for AP(20K)).\n";
  return 0;
}
