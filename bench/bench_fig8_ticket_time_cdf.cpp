// Reproduces Fig 8: CDF of the time from a prediction to the customer's
// ticket, for the top 10K / 20K / 100K-equivalent prediction sets.
// Paper landmarks: ~80% of predicted tickets arrive within two weeks;
// fixing everything by Monday (2 days) misses at most 15% of them and
// fixing within three days misses at most 20%.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Fig 8 — CDF of days from prediction to the customer's "
                     "ticket, by prediction-set size");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t top_n = bench::scaled_top_n(args.n_lines);

  core::PredictorConfig cfg;
  cfg.top_n = top_n;
  std::cout << "training predictor...\n";
  core::TicketPredictor predictor(cfg);
  predictor.train(data, splits.train_from, splits.train_to);

  // Paper's 10K / 20K / 100K of a 20K budget -> 0.5x / 1x / 5x.
  struct Set {
    const char* label;
    double multiple;
    std::vector<double> arrival_days;
  };
  Set sets[] = {{"top 0.5x budget (10K)", 0.5, {}},
                {"top 1x budget (20K)", 1.0, {}},
                {"top 5x budget (100K)", 5.0, {}}};

  for (int week = splits.test_from; week <= splits.test_to; ++week) {
    const auto ranked = predictor.predict_week(data, week);
    const util::Day day = util::saturday_of_week(week);
    for (auto& set : sets) {
      const auto take = static_cast<std::size_t>(
          set.multiple * static_cast<double>(top_n));
      for (std::size_t i = 0; i < take && i < ranked.size(); ++i) {
        const auto next = data.next_edge_ticket_after(ranked[i].line, day);
        if (next.has_value() && *next <= day + cfg.horizon_days) {
          set.arrival_days.push_back(static_cast<double>(*next - day));
        }
      }
    }
  }

  util::Table table({"days", sets[0].label, sets[1].label, sets[2].label});
  std::vector<util::EmpiricalCdf> cdfs;
  cdfs.reserve(3);
  for (auto& set : sets) cdfs.emplace_back(std::move(set.arrival_days));
  for (int d = 0; d <= 28; d += 2) {
    table.add_row({std::to_string(d), util::fmt_percent(cdfs[0].at(d)),
                   util::fmt_percent(cdfs[1].at(d)),
                   util::fmt_percent(cdfs[2].at(d))});
  }
  table.print(std::cout);

  std::cout << "\npredicted tickets in sets: " << cdfs[0].size() << " / "
            << cdfs[1].size() << " / " << cdfs[2].size() << "\n";
  std::cout << "Missed if all predicted problems fixed by Monday (2 days): "
            << util::fmt_percent(cdfs[1].at(2.0)) << " (paper: at most 15%)\n"
            << "Missed if fixed within three days: "
            << util::fmt_percent(cdfs[1].at(3.0)) << " (paper: at most 20%)\n"
            << "Arrived within two weeks: "
            << util::fmt_percent(cdfs[1].at(14.0)) << " (paper: ~80%)\n";
  return 0;
}
