// Reproduces the §6.3 headline: the number of locations a technician
// must test to find the true problem, comparing the basic experience
// ranking with the flat and combined inference models. Paper: locating
// 50% of problems takes up to 9 tests with basic ranks but only 4 with
// either learned model — half the dispatch time saved in half of all
// dispatches.
#include <iostream>

#include "bench_common.hpp"
#include "core/trouble_locator.hpp"
#include "util/stats.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 40000);
  util::print_banner(std::cout,
                     "Sec 6.3 — tests needed to locate problems: experience "
                     "vs flat vs combined models");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;

  core::LocatorConfig cfg;
  // The paper's >20-occurrence rule at millions of lines; scale the
  // threshold with our dispatch volume.
  cfg.min_occurrences = std::max<std::size_t>(10, args.n_lines / 2000);
  std::cout << "training locator on dispatch weeks "
            << splits.locator_train_from << "-" << splits.locator_train_to
            << "...\n";
  core::TroubleLocator locator(cfg);
  locator.train(data, splits.locator_train_from, splits.locator_train_to);

  const auto test = features::encode_at_dispatch(
      data, splits.locator_test_from, splits.locator_test_to, cfg.encoder);

  // Coverage, as the paper reports it (81.9% with 52 dispositions).
  std::size_t covered_notes = 0;
  auto is_covered = [&](dslsim::DispositionId d) {
    for (auto c : locator.covered()) {
      if (c == d) return true;
    }
    return false;
  };
  for (std::uint32_t idx : test.note_of_row) {
    if (is_covered(data.notes()[idx].disposition)) ++covered_notes;
  }
  std::cout << "locator covers " << locator.covered().size()
            << " dispositions accounting for "
            << util::fmt_percent(static_cast<double>(covered_notes) /
                                 static_cast<double>(test.note_of_row.size()))
            << " of " << test.note_of_row.size() << " test dispatches\n\n";

  const core::LocatorModelKind kinds[] = {core::LocatorModelKind::kExperience,
                                          core::LocatorModelKind::kFlat,
                                          core::LocatorModelKind::kCombined};
  std::vector<std::vector<double>> ranks(3);
  std::vector<float> row(test.dataset.n_cols());
  for (std::size_t r = 0; r < test.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[test.note_of_row[r]];
    if (!is_covered(note.disposition)) continue;
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = test.dataset.at(r, j);
    for (std::size_t k = 0; k < 3; ++k) {
      ranks[k].push_back(static_cast<double>(
          locator.rank_of(row, note.disposition, kinds[k])));
    }
  }

  util::Table table({"% of problems located", "experience (basic)", "flat",
                     "combined"});
  for (double q : {0.25, 0.50, 0.75, 0.90}) {
    table.add_row({util::fmt_percent(q, 0),
                   util::fmt_double(util::quantile(ranks[0], q), 0),
                   util::fmt_double(util::quantile(ranks[1], q), 0),
                   util::fmt_double(util::quantile(ranks[2], q), 0)});
  }
  table.print(std::cout);

  std::cout << "\nmean tests per dispatch: experience "
            << util::fmt_double(util::mean(ranks[0]), 2) << ", flat "
            << util::fmt_double(util::mean(ranks[1]), 2) << ", combined "
            << util::fmt_double(util::mean(ranks[2]), 2) << "\n";
  std::cout << "Paper: locating 50% of problems needs up to 9 tests with "
               "basic ranks, only 4 with either model.\n";
  return 0;
}
