// Data-overview bench: the observations in §2.2 / §3.3 the paper makes
// about its feeds before any learning —
//   * ticket arrivals have "a clear weekly trend, where the number of
//     tickets peaks on Monday and hits the bottom over the weekend"
//     (why Saturday line tests leave quiet capacity for proactive work),
//   * the four major locations split the dispatch volume with no
//     dominant disposition inside any of them,
//   * a noticeable fraction of Saturday tests find the modem off.
#include <iostream>

#include "bench_common.hpp"
#include "dslsim/summary.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Data overview — weekday ticket trend, location shares, "
                     "missing-record rate (paper Secs 2.2/3.3)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();

  const auto tickets = dslsim::summarize_tickets(data);
  std::cout << "\ncustomer-edge tickets: " << tickets.edge_total
            << " (dispatched: " << tickets.dispatched
            << "), billing/other: " << tickets.billing_total << "\n\n";

  util::Table weekday({"weekday", "tickets", "vs Monday", "bar"});
  const auto monday = static_cast<double>(
      tickets.by_weekday[static_cast<std::size_t>(util::Weekday::kMonday)]);
  for (std::size_t d = 0; d < 7; ++d) {
    const auto wd = static_cast<util::Weekday>(d);
    const auto count = tickets.by_weekday[d];
    weekday.add_row(
        {util::weekday_name(wd), std::to_string(count),
         util::fmt_percent(monday > 0 ? static_cast<double>(count) / monday
                                      : 0.0),
         std::string(count * 50 / std::max<std::size_t>(
                                      static_cast<std::size_t>(monday), 1),
                     '#')});
  }
  weekday.print(std::cout);
  std::cout << "(paper: peak on Monday, bottom over the weekend — the line "
               "tests run Saturdays into that lull)\n\n";

  const auto locations = dslsim::summarize_locations(data);
  util::Table loc_table({"major location", "dispatches", "share",
                         "top disposition share"});
  for (const auto& ls : locations) {
    loc_table.add_row({dslsim::major_location_name(ls.location),
                       std::to_string(ls.dispatches),
                       util::fmt_percent(ls.share),
                       util::fmt_percent(ls.top_disposition_share)});
  }
  loc_table.print(std::cout);
  std::cout << "(paper Table 1: no location is dominated by one "
               "disposition, so expert rules alone cannot localize)\n\n";

  const auto measurements = dslsim::summarize_measurements(data);
  std::cout << "line-test records: " << measurements.records
            << ", missing (modem off): " << measurements.missing << " ("
            << util::fmt_percent(measurements.missing_rate) << ")\n";
  return 0;
}
