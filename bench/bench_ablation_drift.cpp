// Ablation A5 (§5.1/§5.2 observation): "the correlation between line
// measurements and future customer tickets becomes weak as the time gap
// increases". One model trained on the Aug–Sep split is evaluated on
// each subsequent week separately — accuracy at the budget should decay
// slowly with distance from training, which also tells an operator how
// often the deployed model needs retraining.
#include <iostream>

#include "bench_common.hpp"
#include "ml/metrics.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 12000);
  util::print_banner(std::cout,
                     "Ablation A5 — accuracy decay with distance from the "
                     "training period (retraining cadence)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t budget = bench::scaled_top_n(args.n_lines);

  core::PredictorConfig cfg;
  cfg.top_n = budget;
  cfg.use_derived_features = false;
  std::cout << "training once on weeks " << splits.train_from << "-"
            << splits.train_to << "...\n";
  core::TicketPredictor predictor(cfg);
  predictor.train(data, splits.train_from, splits.train_to);

  const features::TicketLabeler labeler{cfg.horizon_days};
  util::Table table({"test week", "weeks past training", "accuracy at budget",
                     "positive rate"});
  const int last_usable = data.n_weeks() - 1 - 4;  // label horizon fits
  for (int week = splits.train_to + 1; week <= last_usable; week += 2) {
    const auto block = features::encode_weeks(
        data, week, week, predictor.full_encoder_config(), labeler);
    const auto scores = predictor.score_block(block);
    const std::size_t cuts[] = {budget};
    const auto prec =
        ml::precision_curve(scores, block.dataset.labels(), cuts);
    const double base =
        static_cast<double>(block.dataset.positives()) /
        static_cast<double>(block.dataset.n_rows());
    table.add_row({std::to_string(week),
                   std::to_string(week - splits.train_to),
                   util::fmt_percent(prec[0]), util::fmt_percent(base, 2)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: a slow decay — the physical couplings are "
               "stationary, so one training refresh per quarter suffices; a "
               "cliff would argue for weekly retraining.\n";
  return 0;
}
