// Ablation A4 (§4.4): the paper chooses the stump-linear BStump
// "because of the existence of such noise in the training data,
// sophisticated non-linear models overfit easily". Two probes:
//   1. boosting-rounds sweep — accuracy at the budget should saturate,
//      not collapse, as T grows (noise robustness);
//   2. extra injected label noise — flipping a fraction of the training
//      positives to negatives (unreported problems) should degrade
//      accuracy gracefully.
#include <iostream>

#include "bench_common.hpp"
#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 12000);
  util::print_banner(std::cout,
                     "Ablation A4 — boosting rounds and label-noise "
                     "robustness of BStump");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t budget = bench::scaled_top_n(args.n_lines);
  const int n_test_weeks = splits.test_to - splits.test_from + 1;
  const std::size_t cutoff = budget * static_cast<std::size_t>(n_test_weeks);
  const features::TicketLabeler labeler{28};

  // Shared encoding: base features, fixed selection via one reference
  // predictor so only the final ensemble varies.
  core::PredictorConfig ref_cfg;
  ref_cfg.top_n = budget;
  ref_cfg.use_derived_features = false;
  std::cout << "selecting features once...\n";
  core::TicketPredictor reference(ref_cfg);
  reference.train(data, splits.train_from, splits.train_to);
  const auto& encoder_cfg = reference.full_encoder_config();

  const auto train_block = features::encode_weeks(
      data, splits.train_from, splits.train_to, encoder_cfg, labeler);
  const auto test_block = features::encode_weeks(
      data, splits.test_from, splits.test_to, encoder_cfg, labeler);
  std::vector<std::size_t> sel = reference.selected_features();
  const ml::DatasetView train =
      ml::DatasetView(train_block.dataset).cols(sel);
  const ml::DatasetView test = ml::DatasetView(test_block.dataset).cols(sel);
  const std::vector<std::uint8_t> test_labels = test.labels_copy();

  auto precision_at_budget = [&](const ml::BStumpModel& model,
                                 const ml::DatasetView& eval) {
    const auto scores = model.score_dataset(eval);
    const std::size_t cuts[] = {cutoff};
    return ml::precision_curve(scores, test_labels, cuts)[0];
  };

  std::cout << "\n-- boosting rounds sweep --\n";
  util::Table rounds_table({"rounds T", "accuracy at 1x budget"});
  for (const std::size_t rounds : {25UL, 50UL, 100UL, 200UL, 400UL, 800UL}) {
    ml::BStumpConfig bcfg;
    bcfg.iterations = rounds;
    const auto model = ml::train_bstump(train, bcfg);
    rounds_table.add_row({std::to_string(rounds),
                          util::fmt_percent(precision_at_budget(model, test))});
  }
  rounds_table.print(std::cout);

  std::cout << "\n-- injected label noise (positives flipped to negative in "
               "training): stump-linear BStump vs boosted depth-3 trees --\n";
  util::Table noise_table({"flip rate", "BStump (linear)",
                           "boosted trees (non-linear)"});
  for (const double flip : {0.0, 0.2, 0.4, 0.6}) {
    util::Rng rng(args.seed ^ 0xBADFEED);
    std::vector<std::uint8_t> noisy(train.n_rows());
    for (std::size_t r = 0; r < train.n_rows(); ++r) {
      const bool positive = train.label(r) && !rng.bernoulli(flip);
      noisy[r] = positive ? 1 : 0;
    }
    const ml::DatasetView noisy_train = train.relabel(noisy);

    ml::BStumpConfig bcfg;
    bcfg.iterations = 200;
    const auto stump_model = ml::train_bstump(noisy_train, bcfg);

    // The "sophisticated non-linear model" the paper declines to use
    // (§4.4): same boosting, depth-3 trees instead of stumps.
    ml::BoostedTreesConfig tcfg;
    tcfg.iterations = 70;  // ~same count of weak-learner node tests
    tcfg.tree.max_depth = 3;
    const auto tree_model = ml::train_boosted_trees(noisy_train, tcfg);
    const auto tree_scores = tree_model.score_dataset(test);
    const std::size_t cuts[] = {cutoff};
    const double tree_prec =
        ml::precision_curve(tree_scores, test_labels, cuts)[0];

    noise_table.add_row(
        {util::fmt_percent(flip, 0),
         util::fmt_percent(precision_at_budget(stump_model, test)),
         util::fmt_percent(tree_prec)});
  }
  noise_table.print(std::cout);

  std::cout << "\nExpected shape: accuracy saturates with rounds (no "
               "catastrophic overfit); under hidden-positive label noise "
               "the stump-linear model degrades gracefully and holds up "
               "against the non-linear comparator — the paper's §4.4 "
               "argument for choosing BStump.\n";
  return 0;
}
