// Benchmark and correctness gate for the network front-end: train a
// predictor, start the epoll server in-process on an ephemeral port,
// then drive it with the multi-connection LoadGen the way a fleet of
// remote collectors would:
//
//  1. wire identity — every line's score fetched over the wire (and the
//     TOP_N ranking) must be byte-identical to the offline batch path
//     (TicketPredictor::predict_week): the framed protocol ships raw
//     IEEE-754 bits, so a single flipped bit anywhere in the stack
//     fails the run;
//  2. throughput + latency — per-op request rate and p50/p99 latency
//     for INGEST_MEASUREMENT, SCORE and PING across >= 8 concurrent
//     connections;
//  3. graceful shutdown — request_stop() after the load completes must
//     drain (frames_in == replies_out) and return.
//
// Writes BENCH_net.json (throughputs are *_per_s — higher is better;
// latencies are *_ms — lower is better under tools/check_bench.py) and
// exits 1 on any identity or drain failure.
//
// Usage: bench_net [--lines N] [--seed S] [--rounds R]
//                  [--connections C] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace {

using namespace nevermind;

constexpr int kScoreWeek = 43;  // the paper's 10/31 proactive Saturday

double ms(double seconds) { return seconds * 1e3; }

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t lines = 2000;
  std::uint64_t seed = 42;
  std::size_t rounds = 120;
  std::size_t connections = 8;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--lines")) {
      lines = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--rounds")) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--connections")) {
      connections =
          std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }

  const exec::ExecContext exec(2);
  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = lines;
  std::cerr << "simulating " << lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run(exec);

  core::PredictorConfig pred_cfg;
  pred_cfg.exec = exec;
  pred_cfg.top_n = std::max<std::size_t>(lines / 100, 10);
  pred_cfg.boost_iterations = rounds;
  std::cerr << "training predictor (" << rounds << " rounds)...\n";
  core::TicketPredictor predictor(pred_cfg);
  predictor.train(data, 30, 38);

  // Offline batch ranking — the byte-identity reference.
  const std::vector<core::Prediction> batch =
      predictor.predict_week(data, kScoreWeek);
  std::vector<const core::Prediction*> by_line(data.n_lines(), nullptr);
  for (const auto& p : batch) by_line[p.line] = &p;

  // ---- in-process server on an ephemeral port -------------------------
  serve::LineStateStore store(16);
  serve::ModelRegistry registry;
  registry.publish(predictor.kernel());
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  serve::ScoringService service(store, registry, service_cfg);

  net::ServerConfig server_cfg;
  server_cfg.port = 0;  // ephemeral
  net::Server server(store, service, registry, server_cfg);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "ERROR: server start failed: " << error << "\n";
    return 1;
  }
  std::thread server_thread([&] { server.run(); });
  std::cerr << "server listening on 127.0.0.1:" << server.port() << "\n";

  // ---- load generation ------------------------------------------------
  const std::uint32_t top_n =
      static_cast<std::uint32_t>(std::min<std::size_t>(data.n_lines(), 50));
  net::LoadGenConfig lg_cfg;
  lg_cfg.port = server.port();
  lg_cfg.connections = connections;
  lg_cfg.through_week = kScoreWeek;
  lg_cfg.top_n = top_n;
  const net::LoadGenReport report = net::LoadGen(data, lg_cfg).run();
  if (!report.ok) {
    std::cerr << "ERROR: loadgen failed: " << report.error << "\n";
    server.request_stop();
    server_thread.join();
    return 1;
  }

  // ---- graceful shutdown (drain must answer everything) ---------------
  server.request_stop();
  server_thread.join();
  const net::ServerStats& stats = server.stats();
  const bool drained = stats.frames_in == stats.replies_out &&
                       stats.protocol_errors == 0 && stats.slow_closed == 0;

  // ---- wire identity vs the offline batch path ------------------------
  std::uint64_t mismatches = 0;
  for (std::size_t l = 0; l < report.scores.size(); ++l) {
    const serve::ServeScore& s = report.scores[l];
    const core::Prediction* e = by_line[l];
    if (e == nullptr || !s.valid || s.week != kScoreWeek ||
        s.score != e->score || s.probability != e->probability) {
      ++mismatches;
    }
  }
  bool ranking_ok = report.ranked.size() == top_n;
  for (std::size_t i = 0; ranking_ok && i < report.ranked.size(); ++i) {
    const serve::ServeScore& s = report.ranked[i];
    ranking_ok = i < batch.size() && s.valid && s.line == batch[i].line &&
                 s.score == batch[i].score &&
                 s.probability == batch[i].probability;
  }
  const bool identical = mismatches == 0 && ranking_ok;
  std::cerr << "identity: " << report.scores.size() << " lines, "
            << mismatches << " mismatches, top-" << top_n << " ranking "
            << (ranking_ok ? "ok" : "MISMATCH") << "\n"
            << "drain: " << stats.frames_in << " frames in, "
            << stats.replies_out << " replies out"
            << (drained ? "" : " (INCOMPLETE)") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"net\",\n"
       << "  \"lines\": " << lines << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"connections\": " << report.connections << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << ",\n"
       << "  \"drained\": " << (drained ? "true" : "false") << ",\n"
       << "  \"accepted\": " << stats.accepted << ",\n"
       << "  \"frames_in\": " << stats.frames_in << ",\n"
       << "  \"replies_out\": " << stats.replies_out << ",\n"
       << "  \"ingest_requests\": " << report.ingest.count << ",\n"
       << "  \"ingest_per_s\": " << report.ingest.per_s() << ",\n"
       << "  \"ingest_p50_ms\": " << ms(report.ingest.percentile_s(0.50))
       << ",\n"
       << "  \"ingest_p99_ms\": " << ms(report.ingest.percentile_s(0.99))
       << ",\n"
       << "  \"score_requests\": " << report.score.count << ",\n"
       << "  \"score_per_s\": " << report.score.per_s() << ",\n"
       << "  \"score_p50_ms\": " << ms(report.score.percentile_s(0.50))
       << ",\n"
       << "  \"score_p99_ms\": " << ms(report.score.percentile_s(0.99))
       << ",\n"
       << "  \"ping_requests\": " << report.ping.count << ",\n"
       << "  \"ping_per_s\": " << report.ping.per_s() << ",\n"
       << "  \"ping_p50_ms\": " << ms(report.ping.percentile_s(0.50)) << ",\n"
       << "  \"ping_p99_ms\": " << ms(report.ping.percentile_s(0.99)) << "\n"
       << "}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();
  if (!identical) {
    std::cerr << "ERROR: wire scores differ from the offline batch path\n";
    return 1;
  }
  if (!drained) {
    std::cerr << "ERROR: graceful shutdown left work unanswered\n";
    return 1;
  }
  return 0;
}
