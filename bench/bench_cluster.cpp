// Benchmark and correctness gate for the cluster layer: train a
// predictor, replay the dataset through a single-node ScoringService
// (the byte-identity reference), then drive a 3-node cluster with
// replication factor 2 through the same load and kill one node in the
// middle of it:
//
//  1. failover identity — after the kill, every line's score fetched
//     through the ShardRouter (and the merged TOPN_SHARDS ranking)
//     must be byte-identical to the single-node replay: synchronous
//     replica fan-out plus idempotent (line, week) ingest means the
//     survivors hold exactly the state the reference holds, and raw
//     IEEE-754 wire floats mean not a bit may differ;
//  2. detection latency — how fast the routers fail over after the
//     crash (first map rebuild) and how fast the survivors' failure
//     detectors declare the peer dead (HEALTH poll);
//  3. rejoin — a fresh node readmitted at a new port via HANDOFF
//     streaming must serve byte-identical scores when a *second* node
//     is killed and the newcomer becomes primary for its shards.
//
// Writes BENCH_cluster.json (throughputs are *_per_s — higher is
// better; latencies are *_ms — lower is better under
// tools/check_bench.py) and exits 1 on any identity, write, or
// detection failure.
//
// Usage: bench_cluster [--lines N] [--seed S] [--rounds R]
//                      [--drivers D] [--shards K] [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/router.hpp"
#include "cluster/types.hpp"
#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "util/calendar.hpp"

namespace {

using namespace nevermind;
using Clock = std::chrono::steady_clock;

constexpr int kScoreWeek = 43;  // the paper's 10/31 proactive Saturday
constexpr std::size_t kNodes = 3;
constexpr std::uint32_t kReplication = 2;

double ms(double seconds) { return seconds * 1e3; }

double since_s(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile_ms(std::vector<double>& lat_s, double p) {
  if (lat_s.empty()) return 0.0;
  std::sort(lat_s.begin(), lat_s.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(lat_s.size() - 1));
  return ms(lat_s[idx]);
}

bool same_score(const serve::ServeScore& got, const serve::ServeScore& want) {
  return got.valid && want.valid && got.week == want.week &&
         got.score == want.score && got.probability == want.probability;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t lines = 2000;
  std::uint64_t seed = 42;
  std::size_t rounds = 120;
  std::size_t drivers = 4;
  std::uint32_t cluster_shards = 12;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--lines")) {
      lines = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--rounds")) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--drivers")) {
      drivers = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--shards")) {
      cluster_shards = std::max<std::uint32_t>(
          static_cast<std::uint32_t>(kNodes),
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }

  const exec::ExecContext exec(2);
  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = lines;
  std::cerr << "simulating " << lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run(exec);

  core::PredictorConfig pred_cfg;
  pred_cfg.exec = exec;
  pred_cfg.top_n = std::max<std::size_t>(lines / 100, 10);
  pred_cfg.boost_iterations = rounds;
  std::cerr << "training predictor (" << rounds << " rounds)...\n";
  core::TicketPredictor predictor(pred_cfg);
  predictor.train(data, 30, 38);
  const core::ScoringKernel& kernel = predictor.kernel();

  // ---- single-node replay: the byte-identity reference ----------------
  serve::LineStateStore ref_store;
  serve::ModelRegistry ref_registry;
  ref_registry.publish(kernel);
  serve::ServiceConfig svc_cfg;
  svc_cfg.exec = exec;
  serve::ScoringService ref_service(ref_store, ref_registry, svc_cfg);
  serve::ReplayDriver replay(data, ref_store);
  replay.feed_through(kScoreWeek, exec);

  std::vector<dslsim::LineId> all_lines(data.n_lines());
  for (std::size_t l = 0; l < all_lines.size(); ++l) {
    all_lines[l] = static_cast<dslsim::LineId>(l);
  }
  const std::vector<serve::ServeScore> ref_scores =
      ref_service.score_lines(all_lines);
  const std::uint32_t top_n =
      static_cast<std::uint32_t>(std::min<std::size_t>(data.n_lines(), 50));
  const std::vector<serve::ServeScore> ref_ranked = ref_service.top_n(top_n);

  // ---- 3-node cluster on ephemeral ports ------------------------------
  // Aggressive (bench-scale) failure-detector timings so the membership
  // layer, not the run length, dominates detection latency.
  cluster::ClusterNodeConfig node_cfg;
  node_cfg.heartbeat_interval = std::chrono::milliseconds(25);
  node_cfg.membership.suspect_after = std::chrono::milliseconds(100);
  node_cfg.membership.dead_after = std::chrono::milliseconds(300);
  std::vector<std::unique_ptr<cluster::ClusterNode>> nodes;
  std::vector<cluster::Endpoint> endpoints;
  for (std::size_t i = 0; i < kNodes; ++i) {
    cluster::ClusterNodeConfig cfg = node_cfg;
    cfg.node_id = static_cast<cluster::NodeId>(i);
    nodes.push_back(std::make_unique<cluster::ClusterNode>(cfg));
    std::string error;
    if (!nodes.back()->start(&error)) {
      std::cerr << "ERROR: node " << i << " start failed: " << error << "\n";
      return 1;
    }
    endpoints.push_back({static_cast<cluster::NodeId>(i), "127.0.0.1",
                         nodes.back()->port(), true});
    std::cerr << "node " << i << " listening on 127.0.0.1:"
              << nodes.back()->port() << "\n";
  }
  const cluster::ShardMap map =
      cluster::make_shard_map(endpoints, cluster_shards, kReplication);

  const auto stop_all = [&](cluster::ClusterNode* extra) {
    for (auto& node : nodes) {
      if (node->running()) node->stop();
    }
    if (extra != nullptr && extra->running()) extra->stop();
  };

  const cluster::RouterOptions ropts;  // 250ms connect / 500ms request
  cluster::ShardRouter coord(map, ropts);
  if (!coord.connect_all() || !coord.push_model(kernel) ||
      !coord.broadcast_map()) {
    std::cerr << "ERROR: cluster bootstrap failed: " << coord.last_error()
              << "\n";
    stop_all(nullptr);
    return 1;
  }

  // Customer-edge tickets through the scored week's Saturday, in day
  // order — the same horizon ReplayDriver feeds.
  std::vector<std::pair<util::Day, dslsim::LineId>> tickets;
  const util::Day horizon = util::saturday_of_week(kScoreWeek);
  for (const auto& ticket : data.tickets()) {
    if (ticket.category == dslsim::TicketCategory::kCustomerEdge &&
        ticket.reported <= horizon) {
      tickets.emplace_back(ticket.reported, ticket.line);
    }
  }
  std::stable_sort(
      tickets.begin(), tickets.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  // ---- ingest phase with a mid-run kill of node 2 ----------------------
  const std::uint64_t total_measurements =
      static_cast<std::uint64_t>(data.n_lines()) * (kScoreWeek + 1);
  const std::uint64_t kill_at = total_measurements / 2;
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<bool> ingest_failed{false};
  std::mutex shared_mutex;  // guards error/kill_time/first_failover
  std::string first_error;
  std::optional<Clock::time_point> kill_time;
  std::optional<Clock::time_point> first_failover;
  double membership_detect_ms = -1.0;

  const auto fail = [&](const std::string& what) {
    const std::lock_guard<std::mutex> lock(shared_mutex);
    if (!ingest_failed.exchange(true)) first_error = what;
  };

  std::thread killer([&] {
    while (ingested.load() < kill_at && !ingest_failed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ingest_failed.load()) return;
    nodes[2]->kill();  // abrupt: sockets close, no goodbye
    const auto t_kill = Clock::now();
    {
      const std::lock_guard<std::mutex> lock(shared_mutex);
      kill_time = t_kill;
    }
    std::cerr << "killed node 2 after " << ingested.load() << "/"
              << total_measurements << " measurements\n";
    // Poll node 0's HEALTH until its failure detector reports the
    // peer dead — the membership-layer detection latency.
    cluster::ShardRouter health_router(map, ropts);
    const auto deadline = t_kill + std::chrono::seconds(15);
    while (Clock::now() < deadline) {
      const auto h = health_router.health(0);
      if (h.has_value()) {
        for (const cluster::PeerHealth& p : h->peers) {
          if (p.node == 2 && p.state == cluster::PeerState::kDead) {
            const std::lock_guard<std::mutex> lock(shared_mutex);
            membership_detect_ms =
                ms(std::chrono::duration<double>(Clock::now() - t_kill)
                       .count());
            return;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::uint64_t ingest_count = 0;
  double ingest_wall_s = 0.0;
  std::vector<double> ingest_lat_s;
  {
    std::vector<std::thread> workers;
    workers.reserve(drivers);
    for (std::size_t d = 0; d < drivers; ++d) {
      workers.emplace_back([&, d] {
        cluster::ShardRouter router(map, ropts);
        std::uint64_t count = 0;
        std::vector<double> lat;
        bool failover_seen = false;
        const auto start = Clock::now();
        if (d == 0) {
          for (const auto& [day, line] : tickets) {
            if (!router.ingest_ticket(line, day)) {
              fail("ingest_ticket: " + router.last_error());
              return;
            }
          }
        }
        for (int week = 0; week <= kScoreWeek; ++week) {
          for (std::size_t l = d; l < data.n_lines(); l += drivers) {
            serve::LineMeasurement m;
            m.line = static_cast<dslsim::LineId>(l);
            m.week = week;
            m.profile = data.plant(m.line).profile;
            m.metrics = data.measurement(week, m.line);
            const auto t0 = Clock::now();
            if (!router.ingest(m)) {
              fail("ingest: " + router.last_error());
              return;
            }
            lat.push_back(since_s(t0));
            ++count;
            ingested.fetch_add(1, std::memory_order_relaxed);
            if (!failover_seen && router.stats().nodes_marked_dead > 0) {
              failover_seen = true;
              const auto now = Clock::now();
              const std::lock_guard<std::mutex> lock(shared_mutex);
              if (!first_failover.has_value() || now < *first_failover) {
                first_failover = now;
              }
            }
          }
        }
        const double wall = since_s(start);
        const std::lock_guard<std::mutex> lock(shared_mutex);
        ingest_count += count;
        ingest_wall_s = std::max(ingest_wall_s, wall);
        ingest_lat_s.insert(ingest_lat_s.end(), lat.begin(), lat.end());
      });
    }
    for (auto& w : workers) w.join();
  }
  killer.join();
  if (ingest_failed.load()) {
    std::cerr << "ERROR: ingest failed: " << first_error << "\n";
    stop_all(nullptr);
    return 1;
  }

  double failover_detect_ms = -1.0;
  if (kill_time.has_value() && first_failover.has_value()) {
    failover_detect_ms = std::max(
        0.0, ms(std::chrono::duration<double>(*first_failover - *kill_time)
                    .count()));
  }

  // ---- query phase against the survivors -------------------------------
  // Routers start from a survivor's post-failover map so query latency
  // measures serving, not re-discovering the death.
  const cluster::ShardMap query_map = nodes[0]->map_snapshot();
  std::vector<serve::ServeScore> scores(data.n_lines());
  std::vector<serve::ServeScore> ranked;
  std::atomic<bool> query_failed{false};
  std::uint64_t query_count = 0;
  double query_wall_s = 0.0;
  std::vector<double> query_lat_s;
  double topn_s = 0.0;
  {
    std::vector<std::thread> workers;
    workers.reserve(drivers);
    for (std::size_t d = 0; d < drivers; ++d) {
      workers.emplace_back([&, d] {
        cluster::ShardRouter router(query_map, ropts);
        std::uint64_t count = 0;
        std::vector<double> lat;
        const auto start = Clock::now();
        for (std::size_t l = d; l < data.n_lines(); l += drivers) {
          const auto t0 = Clock::now();
          const auto s = router.score(static_cast<dslsim::LineId>(l));
          if (!s.has_value()) {
            fail("score: " + router.last_error());
            query_failed.store(true);
            return;
          }
          lat.push_back(since_s(t0));
          scores[l] = *s;  // partitioned by line: no contention
          ++count;
        }
        const double wall = since_s(start);
        std::vector<serve::ServeScore> my_ranked;
        double my_topn_s = 0.0;
        if (d == 0) {
          const auto t0 = Clock::now();
          auto r = router.top_n(top_n);
          my_topn_s = since_s(t0);
          if (!r.has_value()) {
            fail("top_n: " + router.last_error());
            query_failed.store(true);
            return;
          }
          my_ranked = std::move(*r);
        }
        const std::lock_guard<std::mutex> lock(shared_mutex);
        query_count += count;
        query_wall_s = std::max(query_wall_s, wall);
        query_lat_s.insert(query_lat_s.end(), lat.begin(), lat.end());
        if (d == 0) {
          ranked = std::move(my_ranked);
          topn_s = my_topn_s;
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  if (query_failed.load() || ingest_failed.load()) {
    std::cerr << "ERROR: query failed: " << first_error << "\n";
    stop_all(nullptr);
    return 1;
  }

  // ---- failover identity vs the single-node replay ---------------------
  std::uint64_t mismatches = 0;
  for (std::size_t l = 0; l < scores.size(); ++l) {
    if (!same_score(scores[l], ref_scores[l])) ++mismatches;
  }
  bool ranking_ok = ranked.size() == ref_ranked.size();
  for (std::size_t i = 0; ranking_ok && i < ranked.size(); ++i) {
    ranking_ok = ranked[i].line == ref_ranked[i].line &&
                 same_score(ranked[i], ref_ranked[i]);
  }
  const bool identical = mismatches == 0 && ranking_ok;
  std::cerr << "failover identity: " << scores.size() << " lines, "
            << mismatches << " mismatches, top-" << top_n << " ranking "
            << (ranking_ok ? "ok" : "MISMATCH") << "\n";

  // ---- rejoin: readmit a fresh node 2 via HANDOFF, then kill node 1 ----
  cluster::ClusterNodeConfig rejoin_cfg = node_cfg;
  rejoin_cfg.node_id = 2;
  cluster::ClusterNode node2b(rejoin_cfg);
  std::string error;
  if (!node2b.start(&error)) {
    std::cerr << "ERROR: rejoin node start failed: " << error << "\n";
    stop_all(nullptr);
    return 1;
  }
  std::cerr << "node 2 reborn on 127.0.0.1:" << node2b.port() << "\n";
  cluster::ShardRouter admit(nodes[0]->map_snapshot(), ropts);
  std::size_t lines_restored = 0;
  if (!admit.readmit({2, "127.0.0.1", node2b.port(), true}, &kernel,
                     &lines_restored)) {
    std::cerr << "ERROR: readmit failed: " << admit.last_error() << "\n";
    stop_all(&node2b);
    return 1;
  }
  std::cerr << "readmitted node 2: " << lines_restored
            << " lines streamed back\n";

  // Kill node 1: the shards it shared only with the newcomer must now
  // be served from the handed-off state — byte-identity here proves the
  // HANDOFF stream was exact.
  nodes[1]->kill();
  std::uint64_t rejoin_mismatches = 0;
  for (std::size_t l = 0; l < data.n_lines(); ++l) {
    const auto s = admit.score(static_cast<dslsim::LineId>(l));
    if (!s.has_value() || !same_score(*s, ref_scores[l])) ++rejoin_mismatches;
  }
  bool rejoin_ranking_ok = false;
  if (const auto r = admit.top_n(top_n); r.has_value()) {
    rejoin_ranking_ok = r->size() == ref_ranked.size();
    for (std::size_t i = 0; rejoin_ranking_ok && i < r->size(); ++i) {
      rejoin_ranking_ok = (*r)[i].line == ref_ranked[i].line &&
                          same_score((*r)[i], ref_ranked[i]);
    }
  }
  // The newcomer must actually be serving: after the second failover
  // some shards' only live replica is the readmitted node.
  std::size_t newcomer_primary_shards = 0;
  if (const auto idx2 = admit.map().index_of(2); idx2.has_value()) {
    for (std::uint32_t s = 0; s < admit.map().n_shards; ++s) {
      if (admit.map().primary_of(s) == idx2) ++newcomer_primary_shards;
    }
  }
  const bool rejoin_ok = rejoin_mismatches == 0 && rejoin_ranking_ok &&
                         lines_restored > 0 && newcomer_primary_shards > 0;
  std::cerr << "rejoin identity: " << rejoin_mismatches << " mismatches, "
            << "ranking " << (rejoin_ranking_ok ? "ok" : "MISMATCH") << ", "
            << newcomer_primary_shards << " shards led by the newcomer\n";

  stop_all(&node2b);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"cluster\",\n"
       << "  \"lines\": " << lines << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"nodes\": " << kNodes << ",\n"
       << "  \"replication\": " << kReplication << ",\n"
       << "  \"cluster_shards\": " << cluster_shards << ",\n"
       << "  \"drivers\": " << drivers << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << ",\n"
       << "  \"rejoin_deterministic\": " << (rejoin_ok ? "true" : "false")
       << ",\n"
       << "  \"failover_detect_ms\": " << failover_detect_ms << ",\n"
       << "  \"membership_detect_ms\": " << membership_detect_ms << ",\n"
       << "  \"ingest_requests\": " << ingest_count << ",\n"
       << "  \"ingest_per_s\": "
       << (ingest_wall_s > 0 ? static_cast<double>(ingest_count) /
                                   ingest_wall_s
                             : 0.0)
       << ",\n"
       << "  \"ingest_p50_ms\": " << percentile_ms(ingest_lat_s, 0.50)
       << ",\n"
       << "  \"ingest_p99_ms\": " << percentile_ms(ingest_lat_s, 0.99)
       << ",\n"
       << "  \"query_requests\": " << query_count << ",\n"
       << "  \"query_per_s\": "
       << (query_wall_s > 0 ? static_cast<double>(query_count) / query_wall_s
                            : 0.0)
       << ",\n"
       << "  \"query_p50_ms\": " << percentile_ms(query_lat_s, 0.50) << ",\n"
       << "  \"query_p99_ms\": " << percentile_ms(query_lat_s, 0.99) << ",\n"
       << "  \"topn_ms\": " << ms(topn_s) << ",\n"
       << "  \"rejoin_lines_restored\": " << lines_restored << ",\n"
       << "  \"newcomer_primary_shards\": " << newcomer_primary_shards << "\n"
       << "}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();
  if (!identical) {
    std::cerr << "ERROR: cluster scores differ from the single-node replay\n";
    return 1;
  }
  if (!rejoin_ok) {
    std::cerr << "ERROR: readmitted node failed the handoff identity check\n";
    return 1;
  }
  if (failover_detect_ms < 0 || membership_detect_ms < 0) {
    std::cerr << "ERROR: the kill was never detected\n";
    return 1;
  }
  return 0;
}
