// Ablation A1 (design choice §6.2): what does the combined model's
// hierarchy-stacking actually buy, and where? Compares experience /
// flat / combined mean ranks sliced by disposition frequency — the
// paper's claim is that stacking f_Ci. under f_Cij helps precisely the
// dispositions "that only occurred rarely in the past".
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/trouble_locator.hpp"
#include "util/stats.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 40000);
  util::print_banner(std::cout,
                     "Ablation A1 — combined vs flat vs experience, by "
                     "disposition frequency");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;

  core::LocatorConfig cfg;
  cfg.min_occurrences = std::max<std::size_t>(10, args.n_lines / 2000);
  std::cout << "training locator...\n";
  core::TroubleLocator locator(cfg);
  locator.train(data, splits.locator_train_from, splits.locator_train_to);

  const auto test = features::encode_at_dispatch(
      data, splits.locator_test_from, splits.locator_test_to, cfg.encoder);

  // Training frequency per covered disposition (from the experience
  // priors embedded in the ranking of any row).
  std::vector<float> row0(test.dataset.n_cols());
  for (std::size_t j = 0; j < row0.size(); ++j) row0[j] = test.dataset.at(0, j);
  std::map<dslsim::DispositionId, double> prior;
  for (const auto& rd :
       locator.rank(row0, core::LocatorModelKind::kExperience)) {
    prior[rd.disposition] = rd.probability;
  }
  std::vector<double> priors;
  for (const auto& [d, p] : prior) priors.push_back(p);
  const double median_prior = util::quantile(priors, 0.5);

  struct Slice {
    std::vector<double> experience;
    std::vector<double> flat;
    std::vector<double> combined;
  };
  Slice common;
  Slice rare;

  std::vector<float> row(test.dataset.n_cols());
  for (std::size_t r = 0; r < test.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[test.note_of_row[r]];
    const auto it = prior.find(note.disposition);
    if (it == prior.end()) continue;
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = test.dataset.at(r, j);
    Slice& slice = it->second >= median_prior ? common : rare;
    slice.experience.push_back(static_cast<double>(locator.rank_of(
        row, note.disposition, core::LocatorModelKind::kExperience)));
    slice.flat.push_back(static_cast<double>(locator.rank_of(
        row, note.disposition, core::LocatorModelKind::kFlat)));
    slice.combined.push_back(static_cast<double>(locator.rank_of(
        row, note.disposition, core::LocatorModelKind::kCombined)));
  }

  util::Table table({"disposition slice", "#dispatches", "experience", "flat",
                     "combined"});
  table.add_row({"common (prior >= median)",
                 std::to_string(common.experience.size()),
                 util::fmt_double(util::mean(common.experience), 2),
                 util::fmt_double(util::mean(common.flat), 2),
                 util::fmt_double(util::mean(common.combined), 2)});
  table.add_row({"rare (prior < median)",
                 std::to_string(rare.experience.size()),
                 util::fmt_double(util::mean(rare.experience), 2),
                 util::fmt_double(util::mean(rare.flat), 2),
                 util::fmt_double(util::mean(rare.combined), 2)});
  table.print(std::cout);

  std::cout << "\n(mean tests until the true disposition; lower is better)\n"
            << "Expected shape: the combined model's edge over flat is "
               "largest on the rare slice.\n";
  return 0;
}
