// Benchmark and correctness gate for the online serving stack: train a
// predictor, then
//
//  1. replay-identity — replay the year's feeds into the sharded line
//     store and verify the served full-population ranking is
//     byte-identical to the offline batch ranking
//     (TicketPredictor::predict_week) at every (shards, threads)
//     configuration — including with a model hot-swap mid-replay
//     (republishing the same kernel must not perturb a single bit);
//  2. ingest throughput — rows/s through LineStateStore::ingest over a
//     full-year replay;
//  3. query throughput + latency — concurrent client threads issuing
//     point queries through the micro-batcher while a swapper thread
//     republishes the model; reports queries/s, p50/p99 latency and the
//     batch-size histogram, and verifies every answer matches the
//     batch-path score.
//
// Writes BENCH_serve.json (throughputs are *_per_s fields — higher is
// better under tools/check_bench.py) and exits 1 on any identity
// failure.
//
// Usage: bench_serve [--lines N] [--seed S] [--rounds R] [--queries Q]
//                    [--clients C] [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace nevermind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kScoreWeek = 43;  // the paper's 10/31 proactive Saturday

/// Full served ranking with the store replayed through kScoreWeek,
/// optionally hot-swapping (republishing) the kernel mid-replay.
std::vector<serve::ServeScore> served_ranking(
    const dslsim::SimDataset& data, const core::ScoringKernel& kernel,
    std::size_t shards, std::size_t threads, bool swap_mid_replay) {
  const exec::ExecContext exec =
      threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
  serve::LineStateStore store(shards);
  serve::ModelRegistry registry;
  registry.publish(kernel);
  serve::ServiceConfig cfg;
  cfg.exec = exec;
  serve::ScoringService service(store, registry, cfg);
  serve::ReplayDriver replay(data, store);
  replay.feed_through(kScoreWeek / 2, exec);
  if (swap_mid_replay) registry.publish(kernel);
  replay.feed_through(kScoreWeek, exec);
  return service.top_n(data.n_lines());
}

bool ranking_matches(const std::vector<core::Prediction>& batch,
                     const std::vector<serve::ServeScore>& served) {
  if (batch.size() != served.size()) return false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!served[i].valid || served[i].week != kScoreWeek ||
        batch[i].line != served[i].line ||
        batch[i].score != served[i].score ||
        batch[i].probability != served[i].probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t lines = 4000;
  std::uint64_t seed = 42;
  std::size_t rounds = 120;
  std::size_t queries = 4000;
  std::size_t clients = 8;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--lines")) {
      lines = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--rounds")) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--queries")) {
      queries = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--clients")) {
      clients = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }

  const exec::ExecContext exec(2);
  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = lines;
  std::cerr << "simulating " << lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run(exec);

  core::PredictorConfig pred_cfg;
  pred_cfg.exec = exec;
  pred_cfg.top_n = std::max<std::size_t>(lines / 100, 10);
  pred_cfg.boost_iterations = rounds;
  std::cerr << "training predictor (" << rounds << " rounds)...\n";
  core::TicketPredictor predictor(pred_cfg);
  predictor.train(data, 30, 38);
  const core::ScoringKernel& kernel = predictor.kernel();

  // ---- 1. replay identity vs the offline batch path -------------------
  const std::vector<core::Prediction> batch =
      predictor.predict_week(data, kScoreWeek);
  bool identical = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const bool swap = shards == 4;  // exercise hot-swap on one config
      const auto served =
          served_ranking(data, kernel, shards, threads, swap);
      const bool ok = ranking_matches(batch, served);
      std::cerr << "identity shards=" << shards << " threads=" << threads
                << (swap ? " +hot-swap" : "") << ": "
                << (ok ? "ok" : "MISMATCH") << "\n";
      identical = identical && ok;
    }
  }

  // ---- 2. ingest throughput -------------------------------------------
  serve::LineStateStore store(16);
  serve::ReplayDriver replay(data, store);
  auto start = Clock::now();
  replay.feed_through(data.n_weeks() - 1, exec);
  const double ingest_s = seconds_since(start);
  const double ingest_rows = static_cast<double>(replay.measurements_fed());
  const double ingest_rows_per_s = ingest_rows / std::max(ingest_s, 1e-9);

  // ---- 3. concurrent point queries through the micro-batcher ----------
  serve::ModelRegistry registry;
  registry.publish(kernel);
  serve::ServiceConfig service_cfg;
  service_cfg.exec = exec;
  serve::ScoringService service(store, registry, service_cfg);

  // Expected score per line from one direct batch pass over the full
  // store (same model version; served answers must agree bitwise).
  const auto all_lines = store.line_ids();
  const auto expected = service.score_lines(all_lines);

  const std::size_t per_client = std::max<std::size_t>(1, queries / clients);
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<bool> stop_swapper{false};

  std::thread swapper([&] {
    // Hot-swap churn during the query storm: republish the same kernel
    // so answers stay comparable while versions advance underneath.
    while (!stop_swapper.load(std::memory_order_relaxed)) {
      registry.publish(kernel);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      util::Rng rng = util::Rng::stream(seed, 1000 + c);
      auto& lat = latencies[c];
      lat.reserve(per_client);
      for (std::size_t q = 0; q < per_client; ++q) {
        const auto line = static_cast<std::size_t>(
            rng.uniform_index(all_lines.size()));
        const auto t0 = Clock::now();
        const serve::ServeScore s = service.score(all_lines[line]);
        lat.push_back(seconds_since(t0));
        const serve::ServeScore& e = expected[line];
        if (!s.valid || s.score != e.score ||
            s.probability != e.probability || s.week != e.week) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double query_s = seconds_since(start);
  stop_swapper.store(true, std::memory_order_relaxed);
  swapper.join();

  std::vector<double> all_lat;
  for (const auto& l : latencies) {
    all_lat.insert(all_lat.end(), l.begin(), l.end());
  }
  std::sort(all_lat.begin(), all_lat.end());
  const auto pct = [&](double p) {
    if (all_lat.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(all_lat.size() - 1));
    return all_lat[idx];
  };
  const double n_queries = static_cast<double>(all_lat.size());
  const double query_per_s = n_queries / std::max(query_s, 1e-9);
  const auto stats = service.batch_stats();

  const bool query_identical = mismatches.load() == 0;
  std::cerr << "queries: " << n_queries << " in " << query_s << "s, "
            << stats.batches << " batches, mismatches "
            << mismatches.load() << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"lines\": " << lines << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"deterministic\": "
       << (identical && query_identical ? "true" : "false") << ",\n"
       << "  \"ingest_rows\": " << ingest_rows << ",\n"
       << "  \"ingest_s\": " << ingest_s << ",\n"
       << "  \"ingest_rows_per_s\": " << ingest_rows_per_s << ",\n"
       << "  \"queries\": " << n_queries << ",\n"
       << "  \"query_wall_s\": " << query_s << ",\n"
       << "  \"query_per_s\": " << query_per_s << ",\n"
       << "  \"p50_latency_s\": " << pct(0.50) << ",\n"
       << "  \"p99_latency_s\": " << pct(0.99) << ",\n"
       << "  \"batches\": " << stats.batches << ",\n"
       << "  \"model_swaps\": " << registry.swap_count() << ",\n"
       << "  \"batch_size_counts\": [";
  for (std::size_t s = 0; s < stats.batch_size_counts.size(); ++s) {
    json << (s == 0 ? "" : ", ") << stats.batch_size_counts[s];
  }
  json << "]\n}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();
  if (!identical) {
    std::cerr << "ERROR: served ranking differs from the batch path\n";
    return 1;
  }
  if (!query_identical) {
    std::cerr << "ERROR: micro-batched answers differ from the batch path\n";
    return 1;
  }
  return 0;
}
