// Reproduces Fig 10: how much the trouble locator improves on the basic
// (experience) rank of the true disposition, binned by that basic rank,
// for the flat and the combined models. Paper shape: both models
// improve every bin; the gain grows as the basic rank gets deeper
// (~ +4 positions for basic ranks 16-20); the combined model wins for
// the low-ranked (rare) problems.
#include <iostream>

#include "bench_common.hpp"
#include "core/trouble_locator.hpp"
#include "util/stats.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 40000);
  util::print_banner(std::cout,
                     "Fig 10 — average rank improvement over the basic rank, "
                     "by basic-rank bin");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;

  core::LocatorConfig cfg;
  cfg.min_occurrences = std::max<std::size_t>(10, args.n_lines / 2000);
  std::cout << "training locator...\n";
  core::TroubleLocator locator(cfg);
  locator.train(data, splits.locator_train_from, splits.locator_train_to);

  const auto test = features::encode_at_dispatch(
      data, splits.locator_test_from, splits.locator_test_to, cfg.encoder);

  auto is_covered = [&](dslsim::DispositionId d) {
    for (auto c : locator.covered()) {
      if (c == d) return true;
    }
    return false;
  };

  // Bin dispatches by basic rank; accumulate the rank change
  // (basic - model; positive = technician tests fewer locations).
  constexpr std::size_t kBins = 5;  // 1-5, 6-10, 11-15, 16-20, 21+
  struct Bin {
    double flat_gain = 0.0;
    double combined_gain = 0.0;
    std::size_t count = 0;
  };
  std::array<Bin, kBins> bins{};

  std::vector<float> row(test.dataset.n_cols());
  for (std::size_t r = 0; r < test.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[test.note_of_row[r]];
    if (!is_covered(note.disposition)) continue;
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = test.dataset.at(r, j);
    const auto basic = locator.rank_of(row, note.disposition,
                                       core::LocatorModelKind::kExperience);
    const auto flat =
        locator.rank_of(row, note.disposition, core::LocatorModelKind::kFlat);
    const auto combined = locator.rank_of(row, note.disposition,
                                          core::LocatorModelKind::kCombined);
    const std::size_t bin = std::min<std::size_t>((basic - 1) / 5, kBins - 1);
    bins[bin].flat_gain += static_cast<double>(basic) - static_cast<double>(flat);
    bins[bin].combined_gain +=
        static_cast<double>(basic) - static_cast<double>(combined);
    ++bins[bin].count;
  }

  util::Table table({"basic rank bin", "#dispatches", "flat: avg rank gain",
                     "combined: avg rank gain"});
  const char* labels[kBins] = {"1-5", "6-10", "11-15", "16-20", "21+"};
  for (std::size_t b = 0; b < kBins; ++b) {
    const double n = std::max<double>(static_cast<double>(bins[b].count), 1.0);
    table.add_row({labels[b], std::to_string(bins[b].count),
                   util::fmt_double(bins[b].flat_gain / n, 2),
                   util::fmt_double(bins[b].combined_gain / n, 2)});
  }
  table.print(std::cout);

  std::cout << "\nPaper shape: gains grow with basic-rank depth (~+4 at "
               "16-20); the combined model adds most for deep (rare) "
               "dispositions.\n";
  return 0;
}
