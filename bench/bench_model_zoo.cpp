// Model zoo: the §4.4 model choice, evaluated head-to-head on the real
// task. Same selected features, same training split; four learners:
//   * BStump        — the paper's choice (stump-linear boosting),
//   * boosted trees — the non-linear alternative the paper rejects,
//   * logistic reg. — the classical linear baseline,
//   * single tree   — depth-5 CART, the weakest reasonable comparator.
// Reported: accuracy at the ATDS budget and AUC on the test weeks.
#include <iostream>

#include "bench_common.hpp"
#include "ml/decision_tree.hpp"
#include "ml/linear_model.hpp"
#include "ml/metrics.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 12000);
  util::print_banner(std::cout,
                     "Model zoo — BStump vs boosted trees vs logistic "
                     "regression vs single CART (same features/split)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t budget = bench::scaled_top_n(args.n_lines);
  const int n_test_weeks = splits.test_to - splits.test_from + 1;
  const std::size_t cutoff = budget * static_cast<std::size_t>(n_test_weeks);
  const features::TicketLabeler labeler{28};

  // One selection pass; every model consumes the same columns.
  core::PredictorConfig ref_cfg;
  ref_cfg.top_n = budget;
  std::cout << "selecting features...\n";
  core::TicketPredictor reference(ref_cfg);
  reference.train(data, splits.train_from, splits.train_to);

  const auto train_block =
      features::encode_weeks(data, splits.train_from, splits.train_to,
                             reference.full_encoder_config(), labeler);
  const auto test_block =
      features::encode_weeks(data, splits.test_from, splits.test_to,
                             reference.full_encoder_config(), labeler);
  const auto& sel = reference.selected_features();
  const ml::DatasetView train =
      ml::DatasetView(train_block.dataset).cols(sel);
  const ml::DatasetView test = ml::DatasetView(test_block.dataset).cols(sel);
  const std::vector<std::uint8_t> test_labels = test.labels_copy();

  util::Table table({"model", "accuracy at 1x budget", "AUC"});
  const auto report = [&](const char* name, const std::vector<double>& scores) {
    const std::size_t cuts[] = {cutoff};
    const auto prec = ml::precision_curve(scores, test_labels, cuts);
    table.add_row({name, util::fmt_percent(prec[0]),
                   util::fmt_double(ml::auc(scores, test_labels), 3)});
  };

  std::cout << "training BStump...\n";
  ml::BStumpConfig bstump_cfg;
  bstump_cfg.iterations = 300;
  report("BStump (paper)", ml::train_bstump(train, bstump_cfg)
                               .score_dataset(test));

  std::cout << "training boosted depth-3 trees...\n";
  ml::BoostedTreesConfig trees_cfg;
  trees_cfg.iterations = 100;
  trees_cfg.tree.max_depth = 3;
  report("boosted trees d=3",
         ml::train_boosted_trees(train, trees_cfg).score_dataset(test));

  std::cout << "training logistic regression...\n";
  report("logistic regression",
         ml::train_linear_model(train).score_dataset(test));

  std::cout << "training single depth-5 CART...\n";
  const std::vector<double> w(train.n_rows(),
                              1.0 / static_cast<double>(train.n_rows()));
  ml::TreeConfig cart_cfg;
  cart_cfg.max_depth = 5;
  const auto cart = ml::train_tree(train, w, cart_cfg);
  std::vector<double> cart_scores(test.n_rows());
  for (std::size_t r = 0; r < test.n_rows(); ++r) {
    cart_scores[r] = cart.score_row(test, r);
  }
  report("single CART d=5", cart_scores);

  table.print(std::cout);
  std::cout << "\nExpected shape: BStump at or near the top at the budget "
               "(the paper's operating point); trees competitive on AUC but "
               "noisier at the top of the ranking; logistic regression "
               "behind both (no thresholds, hurt by imputation); a lone "
               "CART last.\n";
  return 0;
}
