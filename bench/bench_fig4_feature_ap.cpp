// Reproduces Fig 4: histograms of the top-N average precision AP(N) of
// single-feature predictors, for (a) history + customer features, (b)
// quadratic features, and (c) product features. The paper reads
// selection thresholds off these histograms: 0.2 for (a)/(b), where the
// distribution is bimodal, and 0.3 for (c), since a product should beat
// both of its factors.
#include <iostream>

#include "bench_common.hpp"
#include "ml/feature_selection.hpp"
#include "util/stats.hpp"

using namespace nevermind;

namespace {

void print_histogram(const char* title, std::span<const double> scores,
                     double threshold) {
  util::Histogram hist(0.0, 0.25, 10);
  double best = 0.0;
  std::size_t above = 0;
  for (double s : scores) {
    hist.add(s);
    best = std::max(best, s);
    if (s > threshold) ++above;
  }
  std::cout << "\n" << title << "  (features: " << scores.size()
            << ", above threshold " << threshold << ": " << above
            << ", max AP: " << util::fmt_double(best, 3) << ")\n";
  util::Table table({"AP(N) bin", "#features", "bar"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const std::size_t count = hist.bin_count(b);
    table.add_row({util::fmt_double(hist.bin_low(b), 2) + "-" +
                       util::fmt_double(hist.bin_high(b), 2),
                   std::to_string(count),
                   std::string(std::min<std::size_t>(count, 60), '#')});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Fig 4 — top-N average precision of single-feature "
                     "predictors, by feature type");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t top_n = bench::scaled_top_n(args.n_lines);

  // Selection split inside the training period, as the predictor does:
  // first 2/3 of the training weeks to train single-feature models,
  // the rest to score them.
  const int n_train = splits.train_to - splits.train_from + 1;
  const int sel_to = splits.train_from + (2 * n_train) / 3 - 1;

  features::EncoderConfig cfg;  // base features
  const features::TicketLabeler labeler{28};
  const auto sel_train_block = features::encode_weeks(
      data, splits.train_from, sel_to, cfg, labeler);
  const auto sel_val_block =
      features::encode_weeks(data, sel_to + 1, splits.train_to, cfg, labeler);

  ml::FeatureScoringConfig scoring;
  scoring.top_n = top_n * static_cast<std::size_t>(splits.train_to - sel_to);

  std::cout << "scoring " << sel_train_block.dataset.n_cols()
            << " history+customer features...\n";
  const auto base_scores =
      ml::score_features(sel_train_block.dataset, sel_val_block.dataset,
                         ml::SelectionMethod::kTopNAp, scoring);
  print_histogram("(a) history and customer features", base_scores,
                  core::PredictorConfig{}.history_threshold);

  // Quadratic features over every base feature.
  features::EncoderConfig qcfg = cfg;
  qcfg.include_quadratic = true;
  const auto q_train =
      features::encode_weeks(data, splits.train_from, sel_to, qcfg, labeler);
  const auto q_val =
      features::encode_weeks(data, sel_to + 1, splits.train_to, qcfg, labeler);
  const std::size_t n_base = base_scores.size();
  std::cout << "scoring " << n_base << " quadratic features...\n";
  const auto all_q = ml::score_features(q_train.dataset, q_val.dataset,
                                        ml::SelectionMethod::kTopNAp, scoring,
                                        n_base);
  print_histogram("(b) quadratic features",
                  std::span(all_q).subspan(n_base),
                  core::PredictorConfig{}.quadratic_threshold);

  // Product features: pairs over the strongest base features. The
  // paper evaluates thousands of products; we pair the top-P bases
  // (P^2/2 pairs) in chunks to bound memory.
  const std::size_t pool_size = std::min<std::size_t>(n_base, 36);
  const auto pool = ml::select_top_k(base_scores, pool_size);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      pairs.emplace_back(pool[i], pool[j]);
    }
  }
  std::cout << "scoring " << pairs.size() << " product features...\n";
  std::vector<double> product_scores;
  const std::size_t chunk = 180;
  for (std::size_t start = 0; start < pairs.size(); start += chunk) {
    features::EncoderConfig pcfg = cfg;
    for (std::size_t i = start; i < std::min(start + chunk, pairs.size()); ++i) {
      pcfg.product_pairs.push_back(pairs[i]);
    }
    const auto p_train =
        features::encode_weeks(data, splits.train_from, sel_to, pcfg, labeler);
    const auto p_val =
        features::encode_weeks(data, sel_to + 1, splits.train_to, pcfg, labeler);
    const auto scores =
        ml::score_features(p_train.dataset, p_val.dataset,
                           ml::SelectionMethod::kTopNAp, scoring, n_base);
    for (std::size_t j = n_base; j < scores.size(); ++j) {
      product_scores.push_back(scores[j]);
    }
  }
  print_histogram("(c) product features", product_scores,
                  core::PredictorConfig{}.product_threshold);

  std::cout << "\nPaper reads thresholds 0.2 / 0.2 / 0.3 off its histograms;\n"
               "our simulated AP scale is compressed, so the thresholds sit\n"
               "at the same bimodal gap of these histograms instead. The\n"
               "shapes to compare: bimodal (a)/(b), heavier high tail with a\n"
               "stricter threshold in (c).\n";
  return 0;
}
