// Reproduces Fig 6: prediction accuracy vs number of top predictions
// for five feature-selection methods (Table 4): the paper's top-N AP
// criterion against AUC, standard average precision, PCA, and gain
// ratio. Per the paper, only history features are used and each method
// selects its top 50 features.
//
// Shape to reproduce: top-N AP wins below the ATDS budget (the region
// that matters operationally) and is overtaken by the AUC-style
// criteria as far more predictions are selected.
#include <iostream>

#include "bench_common.hpp"
#include "ml/metrics.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Fig 6 — accuracy of feature-selection methods (50 "
                     "features each, history features only)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t top_n = bench::scaled_top_n(args.n_lines);
  const int n_test_weeks = splits.test_to - splits.test_from + 1;
  const std::size_t rows = static_cast<std::size_t>(args.n_lines) *
                           static_cast<std::size_t>(n_test_weeks);
  const auto cutoffs = bench::budget_cutoffs(
      top_n * static_cast<std::size_t>(n_test_weeks), rows);

  const ml::SelectionMethod methods[] = {
      ml::SelectionMethod::kAuc,
      ml::SelectionMethod::kAveragePrecision,
      ml::SelectionMethod::kTopNAp,
      ml::SelectionMethod::kPca,
      ml::SelectionMethod::kGainRatio,
  };

  std::vector<std::vector<double>> curves;
  for (const auto method : methods) {
    std::cout << "training with " << ml::selection_method_name(method)
              << " selection...\n";
    core::PredictorConfig cfg;
    cfg.top_n = top_n;
    cfg.use_derived_features = false;
    cfg.selection = method;
    cfg.max_selected_features = 50;
    // Fig 6 fixes 50 features for every method: disable the absolute
    // threshold so top-N AP also returns its best 50.
    cfg.history_threshold = -1.0;
    // History features only (paper: customer features excluded here).
    cfg.encoder.include_customer = false;

    core::TicketPredictor predictor(cfg);
    predictor.train(data, splits.train_from, splits.train_to);

    const features::TicketLabeler labeler{cfg.horizon_days};
    const auto test =
        features::encode_weeks(data, splits.test_from, splits.test_to,
                               predictor.full_encoder_config(), labeler);
    const auto scores = predictor.score_block(test);
    curves.push_back(ml::precision_curve(scores, test.dataset.labels(), cutoffs));
  }

  util::Table table({"#predictions", "x budget", "AUC", "Avg precision",
                     "Top-N AP", "PCA", "Gain ratio"});
  const double budget =
      static_cast<double>(top_n) * static_cast<double>(n_test_weeks);
  for (std::size_t i = 0; i < cutoffs.size(); ++i) {
    table.add_row({std::to_string(cutoffs[i]),
                   util::fmt_double(static_cast<double>(cutoffs[i]) / budget, 2),
                   util::fmt_percent(curves[0][i]),
                   util::fmt_percent(curves[1][i]),
                   util::fmt_percent(curves[2][i]),
                   util::fmt_percent(curves[3][i]),
                   util::fmt_percent(curves[4][i])});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: top-N AP beats every baseline below the "
               "budget (1.0x) and loses to AUC well above it.\n";
  return 0;
}
