// Capacity planning: the operational question behind the paper's
// N = 20K — "how much proactive capacity is worth staffing?" Sweeps the
// weekly ATDS budget and reports, per budget: precision of the batch,
// future tickets prevented, silent problems fixed, clean (wasted) truck
// rolls, and total dispatch hours. The knee of the prevented-tickets
// curve is where marginal capacity stops paying for itself.
#include <iostream>

#include "bench_common.hpp"
#include "core/atds.hpp"
#include "core/trouble_locator.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Capacity planning — proactive outcomes vs weekly ATDS "
                     "budget (the paper's N = 20K choice)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t base_budget = bench::scaled_top_n(args.n_lines);

  core::PredictorConfig pcfg;
  pcfg.top_n = base_budget;
  std::cout << "training predictor...\n";
  core::TicketPredictor predictor(pcfg);
  predictor.train(data, splits.train_from, splits.train_to);

  core::LocatorConfig lcfg;
  lcfg.min_occurrences = std::max<std::size_t>(10, args.n_lines / 2000);
  std::cout << "training locator...\n";
  core::TroubleLocator locator(lcfg);
  locator.train(data, splits.train_from, splits.train_to);

  util::Table table({"budget (x paper ratio)", "submitted", "precision",
                     "tickets prevented", "silent fixed", "clean rolls",
                     "dispatch hours"});
  for (const double multiple : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::AtdsConfig atds;
    atds.weekly_capacity = std::max<std::size_t>(
        static_cast<std::size_t>(multiple * static_cast<double>(base_budget)),
        5);
    std::size_t submitted = 0;
    std::size_t would_ticket = 0;
    std::size_t prevented = 0;
    std::size_t silent = 0;
    std::size_t clean = 0;
    double minutes = 0.0;
    for (int week = splits.test_from; week <= splits.test_to; ++week) {
      const auto ranked = predictor.predict_week(data, week);
      const auto report = core::run_proactive_week(data, ranked, locator,
                                                   atds, week,
                                                   pcfg.horizon_days);
      submitted += report.submitted;
      would_ticket += report.would_ticket;
      prevented += report.tickets_prevented;
      silent += report.silent_fixed;
      clean += report.clean_dispatches;
      minutes += report.locator_minutes;
    }
    table.add_row(
        {util::fmt_double(multiple, 2) + "x", std::to_string(submitted),
         util::fmt_percent(static_cast<double>(would_ticket) /
                           static_cast<double>(std::max<std::size_t>(
                               submitted, 1))),
         std::to_string(prevented), std::to_string(silent),
         std::to_string(clean), util::fmt_double(minutes / 60.0, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: precision falls as the budget grows (the "
               "ranked tail dilutes) while prevented tickets rise with "
               "diminishing returns — the operator picks the knee.\n";
  return 0;
}
