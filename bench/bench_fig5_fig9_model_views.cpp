// Reproduces the paper's two model illustrations on trained models:
//   * Fig 5 — the schematic view of a BStump classifier: the first few
//     weak learners as "test feature >= delta -> S+ / S-" rows (the
//     paper's example: delta uploading bit rate >= -112 -> +0.415 /
//     -0.183);
//   * Fig 9 — the combined inference model for the inside-wiring (IW)
//     problem at the home network: bottom feature partitions feeding
//     the two intermediate classifiers f_IW and f_HN, stacked into
//     P(IW_adj | x) by the Eq. 2 logistic regression.
#include <iostream>

#include "bench_common.hpp"
#include "core/explain.hpp"
#include "core/trouble_locator.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Fig 5 / Fig 9 — schematic views of trained models");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;

  // ---- Fig 5: the ticket predictor's first weak learners ----------------
  core::PredictorConfig pcfg;
  pcfg.top_n = bench::scaled_top_n(args.n_lines);
  pcfg.use_derived_features = false;
  std::cout << "training ticket predictor...\n";
  core::TicketPredictor predictor(pcfg);
  predictor.train(data, splits.train_from, splits.train_to);

  std::cout << "\n-- Fig 5: first weak learners of the BStump ticket "
               "predictor --\n";
  util::Table fig5({"t", "weak learner test", "S+ (pass)", "S- (fail)",
                    "S (missing)"});
  const auto& cols = predictor.selected_columns();
  for (std::size_t t = 0; t < 8 && t < predictor.model().stumps().size();
       ++t) {
    const auto& s = predictor.model().stumps()[t];
    const std::string name = s.feature < cols.size()
                                 ? cols[s.feature].name
                                 : "f" + std::to_string(s.feature);
    fig5.add_row({std::to_string(t + 1),
                  name + (s.categorical ? " == " : " >= ") +
                      util::fmt_double(s.threshold, 2),
                  util::fmt_double(s.score_pass, 3),
                  util::fmt_double(s.score_fail, 3),
                  util::fmt_double(s.score_missing, 3)});
  }
  fig5.print(std::cout);
  std::cout << "(paper's example row: d.upbr >= -112 -> +0.415 / -0.183)\n";

  // ---- Fig 9: the combined model for HN-IW -----------------------------
  core::LocatorConfig lcfg;
  lcfg.min_occurrences = std::max<std::size_t>(10, args.n_lines / 2000);
  std::cout << "\ntraining trouble locator...\n";
  core::TroubleLocator locator(lcfg);
  locator.train(data, splits.locator_train_from, splits.locator_train_to);

  dslsim::DispositionId iw = 0;
  for (dslsim::DispositionId i = 0; i < data.catalog().size(); ++i) {
    if (data.catalog().signature(i).code == "HN-IW") iw = i;
  }
  const ml::BStumpModel* f_iw = locator.flat_model(iw);
  if (f_iw == nullptr) {
    std::cout << "HN-IW not covered at this scale; rerun with more lines\n";
    return 0;
  }

  // A real dispatch whose note says IW — like the paper's figure, pick
  // an illustrative one: the IW dispatch the combined model handles
  // best.
  const auto block = features::encode_at_dispatch(
      data, splits.locator_test_from, splits.locator_test_to, lcfg.encoder);
  const auto columns = features::all_columns(lcfg.encoder);
  std::vector<float> row(block.dataset.n_cols());
  std::size_t best_row = block.dataset.n_rows();
  std::size_t best_rank = ~std::size_t{0};
  for (std::size_t r = 0; r < block.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[block.note_of_row[r]];
    if (note.disposition != iw) continue;
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = block.dataset.at(r, j);
    if (row[0] < 0.5F) continue;  // want a present Saturday record
    const auto rank =
        locator.rank_of(row, iw, core::LocatorModelKind::kCombined);
    if (rank < best_rank) {
      best_rank = rank;
      best_row = r;
    }
  }
  if (best_row < block.dataset.n_rows()) {
    const std::size_t r = best_row;
    const auto& note = data.notes()[block.note_of_row[r]];
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = block.dataset.at(r, j);

    std::cout << "\n-- Fig 9: combined inference for the IW problem at HN "
                 "(real dispatch, ticket #"
              << note.ticket_id << ") --\n";
    std::cout << "bottom nodes -> intermediate classifier f_IW ";
    core::print_explanation(std::cout,
                            core::explain_score(*f_iw, row, columns, 6), 6);
    std::cout << "bottom nodes -> intermediate classifier f_HN ";
    core::print_explanation(
        std::cout,
        core::explain_score(
            locator.location_model(dslsim::MajorLocation::kHomeNetwork), row,
            columns, 6),
        6);
    const auto ranking = locator.rank(row, core::LocatorModelKind::kCombined);
    for (const auto& rd : ranking) {
      if (rd.disposition == iw) {
        std::cout << "top node: P(IW_adj | x) = "
                  << util::fmt_double(rd.probability, 4)
                  << "  (rank " << locator.rank_of(row, iw,
                                                   core::LocatorModelKind::kCombined)
                  << " of " << ranking.size() << ")\n";
      }
    }
  }
  return 0;
}
