// Reproduces Table 1 / Fig 2: the distribution of field-technician
// dispositions over the four major locations (HN, F1, DS, F2), computed
// from one simulated month of tickets (the paper studies August 2009).
// The paper's observation to reproduce: no single disposition dominates
// its major location, which is why purely expert-rule localization is
// hard and the learned locator earns its keep.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Table 1 — dispositions by major location (simulated "
                     "August 2009 tickets)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();

  const util::Day aug1 = util::day_from_date(8, 1);
  const util::Day sep1 = util::day_from_date(9, 1);

  std::map<dslsim::DispositionId, std::size_t> counts;
  std::array<std::size_t, dslsim::kNumMajorLocations> by_location{};
  std::size_t total = 0;
  for (const auto& note : data.notes()) {
    const auto& ticket = data.tickets()[note.ticket_id];
    if (ticket.reported < aug1 || ticket.reported >= sep1) continue;
    ++counts[note.disposition];
    ++by_location[static_cast<std::size_t>(note.location)];
    ++total;
  }
  std::cout << "dispatched customer-edge tickets in August: " << total << "\n";

  for (std::size_t loc = 0; loc < dslsim::kNumMajorLocations; ++loc) {
    const auto location = static_cast<dslsim::MajorLocation>(loc);
    std::vector<std::pair<dslsim::DispositionId, std::size_t>> rows;
    for (const auto& [disp, count] : counts) {
      if (data.catalog().signature(disp).location == location) {
        rows.emplace_back(disp, count);
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    std::cout << "\n-- " << dslsim::major_location_name(location) << " ("
              << by_location[loc] << " dispatches, "
              << util::fmt_percent(static_cast<double>(by_location[loc]) /
                                   static_cast<double>(std::max<std::size_t>(
                                       total, 1)))
              << " of all) --\n";
    util::Table table({"code", "description", "count", "% of location"});
    for (const auto& [disp, count] : rows) {
      const auto& sig = data.catalog().signature(disp);
      table.add_row({sig.code, sig.description, std::to_string(count),
                     util::fmt_percent(
                         static_cast<double>(count) /
                         static_cast<double>(std::max<std::size_t>(
                             by_location[loc], 1)))});
    }
    table.print(std::cout);
  }

  std::cout << "\nPaper's point: every major location mixes many "
               "dispositions with no dominant one.\n";
  return 0;
}
