// Wall-clock benchmark of the exact vs histogram training paths: the
// per-round sorted-index scan against the quantized-column weight
// histograms, on the paper's calendar. Times the ticket-predictor
// ensemble (800 rounds by default) and the trouble locator's
// one-vs-rest sweep (52-ish models x 200 rounds) at 1, 2, and
// hardware_concurrency threads, and emits BENCH_train.json.
//
// The binned path must not *degrade* what the model learns: the bench
// fails (exit 1) when the binned test AUC lands more than --tolerance
// BELOW the exact path's, or when the binned ensemble is not
// byte-identical across thread counts. (Binned regularly lands a hair
// above exact: quantile edges cap each weak learner's threshold
// resolution, a mild regularizer over 800 noisy-label rounds — that
// direction is not a failure.) It does NOT fail on speedup — on a
// one-core container the numbers are still reported and compared
// offline by tools/check_bench.py.
//
// A third section, bench_dataplane, measures the memory cost of the
// CV + feature-selection phase twice — once through the zero-copy
// DatasetView data plane and once through materialized per-fold copies
// (the pre-arena behaviour) — and reports cumulative allocator bytes
// and peak RSS for each into BENCH_train.json. The two paths must
// produce identical models and metrics; the bench fails otherwise.
//
// A fourth section, store, streams the training matrix into an nmarena
// feature-store artefact and prices both read paths — eager copy vs
// zero-copy mmap — in load time, allocator bytes, phase peak RSS, and
// cold-restart (load + first full pass) time. Both loads must
// reproduce the in-memory matrix bit for bit or the bench exits 1.
//
// A fifth section, simd, isolates the binned stump search: it replays
// the histogram boosting loop once per kernel arm (forced scalar,
// forced AVX2 when the CPU has it, and the auto dispatch) at the same
// thread count, timing only the find_best_stump_binned calls. The
// stump sequences must be bit-identical across all arms — the bench
// exits 1 otherwise — and the scalar/AVX2 time ratio is reported as
// simd_stump_speedup for tools/check_bench.py.
//
// Usage: bench_train [--lines N] [--seed S] [--rounds R]
//                    [--locator-rounds R] [--out FILE] [--tolerance T]
#define NEVERMIND_MEMPROBE_IMPL
#include "memprobe.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/trouble_locator.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "features/dataset_io.hpp"
#include "features/encoder.hpp"
#include "ml/adaboost.hpp"
#include "ml/cross_validation.hpp"
#include "ml/feature_selection.hpp"
#include "ml/binning.hpp"
#include "ml/feature_store.hpp"
#include "ml/metrics.hpp"
#include "ml/simd.hpp"

namespace {

using namespace nevermind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Timing {
  std::size_t threads = 1;
  double exact_train_s = 0.0;
  double hist_train_s = 0.0;
  double locator_exact_s = 0.0;
  double locator_hist_s = 0.0;
  ml::BStumpModel exact_model;
  ml::BStumpModel hist_model;
};

bool same_model(const ml::BStumpModel& a, const ml::BStumpModel& b) {
  if (a.stumps().size() != b.stumps().size()) return false;
  for (std::size_t t = 0; t < a.stumps().size(); ++t) {
    const ml::Stump& x = a.stumps()[t];
    const ml::Stump& y = b.stumps()[t];
    if (x.feature != y.feature || x.categorical != y.categorical ||
        x.threshold != y.threshold || x.score_pass != y.score_pass ||
        x.score_fail != y.score_fail || x.score_missing != y.score_missing) {
      return false;
    }
  }
  return true;
}

Timing run_at(std::size_t threads, const dslsim::SimDataset& data,
              const ml::FeatureArena& train, const bench::PaperSplits& splits,
              std::size_t rounds, std::size_t locator_rounds,
              std::uint32_t lines) {
  Timing t;
  t.threads = threads;
  const exec::ExecContext exec =
      threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();

  ml::BStumpConfig exact_cfg;
  exact_cfg.iterations = rounds;
  exact_cfg.exec = exec;
  auto start = Clock::now();
  t.exact_model = ml::train_bstump(train, exact_cfg);
  t.exact_train_s = seconds_since(start);

  ml::BStumpConfig hist_cfg = exact_cfg;
  hist_cfg.binning = ml::BinningMode::kHistogram;
  start = Clock::now();
  t.hist_model = ml::train_bstump(train, hist_cfg);
  t.hist_train_s = seconds_since(start);

  core::LocatorConfig loc_cfg;
  loc_cfg.exec = exec;
  loc_cfg.boost_iterations = locator_rounds;
  loc_cfg.min_occurrences = std::max<std::size_t>(6, lines / 2000);
  {
    core::TroubleLocator locator(loc_cfg);
    start = Clock::now();
    locator.train(data, splits.locator_train_from, splits.locator_train_to);
    t.locator_exact_s = seconds_since(start);
  }
  loc_cfg.binning = ml::BinningMode::kHistogram;
  {
    core::TroubleLocator locator(loc_cfg);
    start = Clock::now();
    locator.train(data, splits.locator_train_from, splits.locator_train_to);
    t.locator_hist_s = seconds_since(start);
  }
  return t;
}

struct DataplaneStats {
  bool rss_reset_supported = false;
  bool peak_rss_approx = false;
  double view_s = 0.0;
  double copy_s = 0.0;
  std::uint64_t view_alloc_bytes = 0;
  std::uint64_t copy_alloc_bytes = 0;
  /// Peak RSS the phase added over the RSS at its start — the memory
  /// the CV + selection work itself is responsible for, independent of
  /// the simulator and arena footprint both phases share.
  std::uint64_t view_peak_rss_bytes = 0;
  std::uint64_t copy_peak_rss_bytes = 0;
  bool outputs_identical = true;
};

/// The CV + feature-selection workload of the training pipeline, run
/// through row/column views. `materialized` instead copies every fold
/// and split into a fresh arena first — the pre-view data plane — so
/// the two runs bracket exactly the memory the views eliminate.
struct DataplaneOutputs {
  std::vector<double> fold_metrics;
  std::vector<double> selection_scores;
  ml::BStumpModel last_fold_model;
};

DataplaneOutputs run_dataplane_workload(const ml::FeatureArena& train,
                                        std::size_t rounds,
                                        bool materialized) {
  DataplaneOutputs out;
  const ml::DatasetView view(train);
  const std::size_t n = view.n_rows();

  // 3-fold CV of a BStump ensemble, the select_boosting_rounds shape.
  ml::BStumpConfig cv_cfg;
  cv_cfg.iterations = std::min<std::size_t>(rounds, 60);
  const auto folds = ml::make_folds(n, 3);
  for (const auto& fold : folds) {
    if (fold.train_rows.empty() || fold.validation_rows.empty()) continue;
    ml::BStumpModel model;
    std::vector<double> scores;
    std::vector<std::uint8_t> val_labels;
    if (materialized) {
      const ml::FeatureArena ftrain =
          ml::materialize(view.rows(fold.train_rows));
      const ml::FeatureArena fval =
          ml::materialize(view.rows(fold.validation_rows));
      model = ml::train_bstump(ftrain, cv_cfg);
      scores = model.score_dataset(fval);
      val_labels.assign(fval.labels().begin(), fval.labels().end());
    } else {
      const ml::DatasetView ftrain = view.rows(fold.train_rows);
      const ml::DatasetView fval = view.rows(fold.validation_rows);
      model = ml::train_bstump(ftrain, cv_cfg);
      scores = model.score_dataset(fval);
      val_labels = fval.labels_copy();
    }
    out.fold_metrics.push_back(
        ml::top_n_average_precision(scores, val_labels, 50));
    out.last_fold_model = std::move(model);
  }

  // Per-feature AP(N) selection on an 80/20 row split.
  std::vector<std::size_t> sel_train_rows;
  std::vector<std::size_t> sel_val_rows;
  for (std::size_t r = 0; r < n; ++r) {
    (r % 5 == 4 ? sel_val_rows : sel_train_rows).push_back(r);
  }
  ml::FeatureScoringConfig scoring;
  scoring.boost_iterations = 8;
  scoring.top_n = 50;
  if (materialized) {
    const ml::FeatureArena sel_train =
        ml::materialize(view.rows(sel_train_rows));
    const ml::FeatureArena sel_val = ml::materialize(view.rows(sel_val_rows));
    out.selection_scores = ml::score_features(
        sel_train, sel_val, ml::SelectionMethod::kTopNAp, scoring);
  } else {
    out.selection_scores = ml::score_features(
        view.rows(sel_train_rows), view.rows(sel_val_rows),
        ml::SelectionMethod::kTopNAp, scoring);
  }
  return out;
}

DataplaneStats run_dataplane(const ml::FeatureArena& train,
                             std::size_t rounds) {
  namespace memprobe = bench::memprobe;
  DataplaneStats stats;
  // View phase first: if the kernel cannot reset the peak-RSS
  // watermark, the probe degrades to watermark growth and the copy
  // phase measured second still upper-bounds it, keeping copy >= view
  // honest.
  std::uint64_t alloc0 = memprobe::bytes_allocated();
  memprobe::PhaseRssProbe view_probe;
  stats.rss_reset_supported = view_probe.exact();
  auto start = Clock::now();
  const DataplaneOutputs view_out = run_dataplane_workload(train, rounds,
                                                           false);
  stats.view_s = seconds_since(start);
  stats.view_alloc_bytes = memprobe::bytes_allocated() - alloc0;
  const memprobe::PhasePeak view_peak = view_probe.sample();
  stats.view_peak_rss_bytes = view_peak.bytes;

  alloc0 = memprobe::bytes_allocated();
  memprobe::PhaseRssProbe copy_probe;
  start = Clock::now();
  const DataplaneOutputs copy_out = run_dataplane_workload(train, rounds,
                                                           true);
  stats.copy_s = seconds_since(start);
  stats.copy_alloc_bytes = memprobe::bytes_allocated() - alloc0;
  const memprobe::PhasePeak copy_peak = copy_probe.sample();
  stats.copy_peak_rss_bytes = copy_peak.bytes;
  stats.peak_rss_approx = !view_peak.exact || !copy_peak.exact;

  // The views are a pure representation change: every fold metric,
  // every selection score and the last fold ensemble must match the
  // materialized path bit for bit.
  stats.outputs_identical =
      view_out.fold_metrics == copy_out.fold_metrics &&
      view_out.selection_scores == copy_out.selection_scores &&
      same_model(view_out.last_fold_model, copy_out.last_fold_model);
  return stats;
}

struct StoreStats {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::uint64_t file_bytes = 0;
  double encode_write_s = 0.0;
  double write_rows_per_s = 0.0;
  double mmap_load_s = 0.0;
  double eager_load_s = 0.0;
  double mmap_restart_s = 0.0;
  double eager_restart_s = 0.0;
  std::uint64_t mmap_alloc_bytes = 0;
  std::uint64_t eager_alloc_bytes = 0;
  std::uint64_t mmap_peak_rss_bytes = 0;
  std::uint64_t eager_peak_rss_bytes = 0;
  bool peak_rss_approx = false;
  bool loads_identical = true;
};

bool same_arena(const ml::FeatureArena& a, const ml::FeatureArena& b) {
  if (a.n_rows() != b.n_rows() || a.n_cols() != b.n_cols()) return false;
  for (std::size_t j = 0; j < a.n_cols(); ++j) {
    for (std::size_t r = 0; r < a.n_rows(); ++r) {
      if (std::bit_cast<std::uint32_t>(a.value(r, j)) !=
          std::bit_cast<std::uint32_t>(b.value(r, j))) {
        return false;
      }
    }
  }
  for (std::size_t r = 0; r < a.n_rows(); ++r) {
    if (a.label(r) != b.label(r)) return false;
  }
  return true;
}

/// Full pass over the matrix — for the mapped arena this faults every
/// payload page in, so a restart timing covers the real first-use cost
/// rather than just the (lazy) mmap call.
double touch_all(const ml::FeatureArena& a) {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.n_cols(); ++j) {
    for (std::size_t r = 0; r < a.n_rows(); ++r) {
      const float v = a.value(r, j);
      if (!ml::is_missing(v)) acc += v;
    }
  }
  return acc;
}

/// The feature-store section: stream the training matrix to an nmarena
/// artefact, load it back both ways, and price each path in time,
/// allocator bytes, and phase peak RSS. The loaded matrices must match
/// the in-memory encode bit for bit — the bench fails otherwise.
StoreStats run_store(const dslsim::SimDataset& data,
                     const bench::PaperSplits& splits,
                     const features::EncoderConfig& enc_cfg,
                     const features::TicketLabeler& labeler,
                     const ml::FeatureArena& train) {
  namespace memprobe = bench::memprobe;
  StoreStats s;
  s.rows = train.n_rows();
  s.cols = train.n_cols();
  const std::string path = "bench_train.nmarena";

  auto start = Clock::now();
  const ml::StoreStatus wrote = features::save_predictor_dataset(
      path, data, splits.train_from, splits.train_to, enc_cfg, labeler);
  s.encode_write_s = seconds_since(start);
  if (!wrote.ok()) {
    std::cerr << "ERROR: cannot write " << path << ": " << wrote.message
              << "\n";
    s.loads_identical = false;
    return s;
  }
  s.write_rows_per_s = s.encode_write_s > 0.0
                           ? static_cast<double>(s.rows) / s.encode_write_s
                           : 0.0;
  std::error_code ec;
  s.file_bytes = std::filesystem::file_size(path, ec);

  // Mmap phase first: if the watermark reset is unavailable the probe
  // degrades to monotone-HWM growth, and the eager copy measured second
  // still upper-bounds the mapped load, keeping eager >= mmap honest.
  ml::StoreStatus status;
  std::uint64_t alloc0 = memprobe::bytes_allocated();
  memprobe::PhaseRssProbe mmap_probe;
  start = Clock::now();
  auto mapped = ml::load_arena(path, {.mode = ml::ArenaLoadMode::kMapped},
                               &status);
  s.mmap_load_s = seconds_since(start);
  s.mmap_alloc_bytes = memprobe::bytes_allocated() - alloc0;
  const memprobe::PhasePeak mmap_peak = mmap_probe.sample();
  s.mmap_peak_rss_bytes = mmap_peak.bytes;
  if (!mapped.has_value()) {
    std::cerr << "ERROR: mmap load failed: " << status.message << "\n";
  }

  alloc0 = memprobe::bytes_allocated();
  memprobe::PhaseRssProbe eager_probe;
  start = Clock::now();
  auto eager = ml::load_arena(path, {.mode = ml::ArenaLoadMode::kEager},
                              &status);
  s.eager_load_s = seconds_since(start);
  s.eager_alloc_bytes = memprobe::bytes_allocated() - alloc0;
  const memprobe::PhasePeak eager_peak = eager_probe.sample();
  s.eager_peak_rss_bytes = eager_peak.bytes;
  s.peak_rss_approx = !mmap_peak.exact || !eager_peak.exact;
  if (!eager.has_value()) {
    std::cerr << "ERROR: eager load failed: " << status.message << "\n";
  }

  s.loads_identical = mapped.has_value() && eager.has_value() &&
                      same_arena(mapped->arena, train) &&
                      same_arena(eager->arena, train);

  // Cold restarts: drop the loaded matrices, reload, and run one full
  // pass — the time for a service to come back up from the artefact.
  mapped.reset();
  eager.reset();
  {
    start = Clock::now();
    auto re = ml::load_arena(path, {.mode = ml::ArenaLoadMode::kMapped});
    volatile double sink = re.has_value() ? touch_all(re->arena) : 0.0;
    (void)sink;
    s.mmap_restart_s = seconds_since(start);
  }
  {
    start = Clock::now();
    auto re = ml::load_arena(path, {.mode = ml::ArenaLoadMode::kEager});
    volatile double sink = re.has_value() ? touch_all(re->arena) : 0.0;
    (void)sink;
    s.eager_restart_s = seconds_since(start);
  }

  std::remove(path.c_str());
  return s;
}

/// One replay of the histogram boosting loop under a forced kernel
/// mode. `stump_s` accumulates only the find_best_stump_binned calls;
/// the reweight pass between rounds (copied from train_binned so the
/// weight stream matches real training) is untimed.
struct SimdRun {
  double stump_s = 0.0;
  std::vector<ml::Stump> stumps;
  std::vector<double> zs;
  std::vector<int> split_bins;
};

SimdRun run_simd_boost(const ml::BinnedColumns& bins,
                       std::span<const std::uint8_t> labels,
                       std::size_t rounds, ml::simd::Mode mode,
                       const exec::ExecContext& exec) {
  ml::simd::set_mode(mode);
  const std::size_t n = bins.n_rows();
  const double smoothing = 0.5 / static_cast<double>(n);
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  SimdRun run;
  for (std::size_t t = 0; t < rounds; ++t) {
    const auto start = Clock::now();
    const ml::BinnedStumpResult best =
        ml::find_best_stump_binned(bins, labels, weights, {}, smoothing, exec);
    run.stump_s += seconds_since(start);
    if (!std::isfinite(best.z)) break;
    run.stumps.push_back(best.stump);
    run.zs.push_back(best.z);
    run.split_bins.push_back(best.split_bin);

    const auto& col = bins.column(best.stump.feature);
    const std::uint8_t missing = col.missing_code();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t code = col.codes[i];
      double h;
      if (code == missing) {
        h = best.stump.score_missing;
      } else if (col.categorical ? static_cast<int>(code) == best.split_bin
                                 : static_cast<int>(code) > best.split_bin) {
        h = best.stump.score_pass;
      } else {
        h = best.stump.score_fail;
      }
      const double y = labels[i] != 0 ? 1.0 : -1.0;
      weights[i] *= std::exp(-y * h);
      total += weights[i];
    }
    if (total <= 0.0) break;
    const double inv = 1.0 / total;
    for (auto& w : weights) w *= inv;
  }
  ml::simd::set_mode(ml::simd::Mode::kAuto);
  return run;
}

/// Bitwise comparison — ±0.0 and NaN must not alias, this is the
/// scalar≡AVX2 identity contract, not a tolerance check.
bool same_simd_run(const SimdRun& a, const SimdRun& b) {
  const auto f32 = [](float v) { return std::bit_cast<std::uint32_t>(v); };
  const auto f64 = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  if (a.stumps.size() != b.stumps.size()) return false;
  for (std::size_t t = 0; t < a.stumps.size(); ++t) {
    const ml::Stump& x = a.stumps[t];
    const ml::Stump& y = b.stumps[t];
    if (x.feature != y.feature || x.categorical != y.categorical ||
        f32(x.threshold) != f32(y.threshold) ||
        f64(x.score_pass) != f64(y.score_pass) ||
        f64(x.score_fail) != f64(y.score_fail) ||
        f64(x.score_missing) != f64(y.score_missing) ||
        f64(a.zs[t]) != f64(b.zs[t]) || a.split_bins[t] != b.split_bins[t]) {
      return false;
    }
  }
  return true;
}

struct SimdStats {
  bool avx2_available = false;
  std::size_t threads = 1;
  std::size_t rounds = 0;
  double scalar_stump_s = 0.0;
  double avx2_stump_s = 0.0;
  double simd_stump_speedup = 0.0;
  bool outputs_identical = true;
};

SimdStats run_simd(const ml::FeatureArena& train, std::size_t rounds,
                   std::size_t threads) {
  SimdStats s;
  s.avx2_available = ml::simd::cpu_supports_avx2();
  s.threads = threads;
  // The ratio is per-round and stable well before 800 rounds; cap the
  // replay so the section stays a fraction of the main timing runs.
  s.rounds = std::min<std::size_t>(rounds, 200);
  const exec::ExecContext exec =
      threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
  const ml::BinnedColumns bins(train, {}, {}, exec);
  const std::span<const std::uint8_t> labels = train.labels();

  const SimdRun scalar =
      run_simd_boost(bins, labels, s.rounds, ml::simd::Mode::kScalar, exec);
  s.scalar_stump_s = scalar.stump_s;
  const SimdRun dispatched =
      run_simd_boost(bins, labels, s.rounds, ml::simd::Mode::kAuto, exec);
  s.outputs_identical = same_simd_run(scalar, dispatched);
  if (s.avx2_available) {
    const SimdRun avx2 =
        run_simd_boost(bins, labels, s.rounds, ml::simd::Mode::kAvx2, exec);
    s.avx2_stump_s = avx2.stump_s;
    s.outputs_identical = s.outputs_identical && same_simd_run(scalar, avx2);
    s.simd_stump_speedup =
        avx2.stump_s > 0.0 ? scalar.stump_s / avx2.stump_s : 0.0;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t lines = 4000;
  std::uint64_t seed = 42;
  std::size_t rounds = 800;
  std::size_t locator_rounds = 200;
  double tolerance = 0.005;
  std::string out_path = "BENCH_train.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--lines")) {
      lines = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--rounds")) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--locator-rounds")) {
      locator_rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--tolerance")) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }

  const bench::PaperSplits splits;
  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = lines;
  std::cerr << "simulating " << lines << " lines...\n";
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  const features::EncoderConfig enc_cfg;
  const features::TicketLabeler labeler{};
  std::cerr << "encoding training and test blocks...\n";
  const ml::FeatureArena train =
      features::encode_weeks(data, splits.train_from, splits.train_to, enc_cfg,
                             labeler)
          .dataset;
  const ml::FeatureArena test =
      features::encode_weeks(data, splits.test_from, splits.test_to, enc_cfg,
                             labeler)
          .dataset;
  std::cerr << "predictor matrix: " << train.n_rows() << " x "
            << train.n_cols() << " (" << train.positives() << " positive)\n";

  std::vector<std::size_t> thread_counts{1, 2};
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  if (hw > 2) thread_counts.push_back(hw);

  std::vector<Timing> timings;
  for (const std::size_t n : thread_counts) {
    std::cerr << "training at " << n << " thread(s)...\n";
    timings.push_back(
        run_at(n, data, train, splits, rounds, locator_rounds, lines));
  }

  bool deterministic = true;
  for (std::size_t i = 1; i < timings.size(); ++i) {
    deterministic = deterministic &&
                    same_model(timings[0].exact_model, timings[i].exact_model) &&
                    same_model(timings[0].hist_model, timings[i].hist_model);
  }

  std::cerr << "measuring data-plane memory (view vs copy)...\n";
  const DataplaneStats dp = run_dataplane(train, rounds);

  std::cerr << "measuring feature store (write / eager load / mmap load)...\n";
  const StoreStats store = run_store(data, splits, enc_cfg, labeler, train);

  std::cerr << "measuring simd kernels (scalar vs avx2 stump search)...\n";
  const SimdStats simd = run_simd(train, rounds, hw);
  const double rss_reduction =
      dp.copy_peak_rss_bytes > 0
          ? 1.0 - static_cast<double>(dp.view_peak_rss_bytes) /
                      static_cast<double>(dp.copy_peak_rss_bytes)
          : 0.0;

  const double auc_exact =
      ml::auc(timings[0].exact_model.score_dataset(test), test.labels());
  const double auc_hist =
      ml::auc(timings[0].hist_model.score_dataset(test), test.labels());
  // Signed: positive means the binned model is WORSE than exact.
  const double auc_regression = auc_exact - auc_hist;

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"train\",\n"
       << "  \"lines\": " << lines << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"locator_rounds\": " << locator_rounds << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"auc_exact\": " << auc_exact << ",\n"
       << "  \"auc_hist\": " << auc_hist << ",\n"
       << "  \"auc_regression\": " << auc_regression << ",\n"
       << "  \"tolerance\": " << tolerance << ",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "  \"dataplane\": {\n"
       << "    \"rss_reset_supported\": "
       << (dp.rss_reset_supported ? "true" : "false") << ",\n"
       << "    \"peak_rss_approx\": "
       << (dp.peak_rss_approx ? "true" : "false") << ",\n"
       << "    \"outputs_identical\": "
       << (dp.outputs_identical ? "true" : "false") << ",\n"
       << "    \"view_s\": " << dp.view_s << ",\n"
       << "    \"copy_s\": " << dp.copy_s << ",\n"
       << "    \"view_alloc_bytes\": " << dp.view_alloc_bytes << ",\n"
       << "    \"copy_alloc_bytes\": " << dp.copy_alloc_bytes << ",\n"
       << "    \"view_peak_rss_bytes\": " << dp.view_peak_rss_bytes << ",\n"
       << "    \"copy_peak_rss_bytes\": " << dp.copy_peak_rss_bytes << ",\n"
       << "    \"peak_rss_reduction\": " << rss_reduction << "\n"
       << "  },\n"
       << "  \"store\": {\n"
       << "    \"rows\": " << store.rows << ",\n"
       << "    \"cols\": " << store.cols << ",\n"
       << "    \"file_bytes\": " << store.file_bytes << ",\n"
       << "    \"loads_identical\": "
       << (store.loads_identical ? "true" : "false") << ",\n"
       << "    \"peak_rss_approx\": "
       << (store.peak_rss_approx ? "true" : "false") << ",\n"
       << "    \"encode_write_s\": " << store.encode_write_s << ",\n"
       << "    \"write_rows_per_s\": " << store.write_rows_per_s << ",\n"
       << "    \"mmap_load_s\": " << store.mmap_load_s << ",\n"
       << "    \"eager_load_s\": " << store.eager_load_s << ",\n"
       << "    \"mmap_restart_s\": " << store.mmap_restart_s << ",\n"
       << "    \"eager_restart_s\": " << store.eager_restart_s << ",\n"
       << "    \"mmap_alloc_bytes\": " << store.mmap_alloc_bytes << ",\n"
       << "    \"eager_alloc_bytes\": " << store.eager_alloc_bytes << ",\n"
       << "    \"mmap_peak_rss_bytes\": " << store.mmap_peak_rss_bytes
       << ",\n"
       << "    \"eager_peak_rss_bytes\": " << store.eager_peak_rss_bytes
       << "\n"
       << "  },\n"
       << "  \"simd\": {\n"
       << "    \"avx2_available\": " << (simd.avx2_available ? "true" : "false")
       << ",\n"
       << "    \"threads\": " << simd.threads << ",\n"
       << "    \"rounds\": " << simd.rounds << ",\n"
       << "    \"outputs_identical\": "
       << (simd.outputs_identical ? "true" : "false") << ",\n"
       << "    \"scalar_stump_s\": " << simd.scalar_stump_s << ",\n"
       << "    \"avx2_stump_s\": " << simd.avx2_stump_s << ",\n"
       << "    \"simd_stump_speedup\": " << simd.simd_stump_speedup << "\n"
       << "  },\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const Timing& t = timings[i];
    const double speedup =
        t.hist_train_s > 0.0 ? t.exact_train_s / t.hist_train_s : 0.0;
    const double locator_speedup =
        t.locator_hist_s > 0.0 ? t.locator_exact_s / t.locator_hist_s : 0.0;
    json << "    {\"threads\": " << t.threads
         << ", \"exact_train_s\": " << t.exact_train_s
         << ", \"hist_train_s\": " << t.hist_train_s
         << ", \"speedup\": " << speedup
         << ", \"locator_exact_s\": " << t.locator_exact_s
         << ", \"locator_hist_s\": " << t.locator_hist_s
         << ", \"locator_speedup\": " << locator_speedup << "}"
         << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();

  if (!deterministic) {
    std::cerr << "ERROR: models differ across thread counts\n";
    return 1;
  }
  if (auc_regression > tolerance) {
    std::cerr << "ERROR: binned AUC is " << auc_regression
              << " below exact (tolerance " << tolerance << ")\n";
    return 1;
  }
  if (!dp.outputs_identical) {
    std::cerr << "ERROR: view and materialized data planes disagree\n";
    return 1;
  }
  if (!store.loads_identical) {
    std::cerr << "ERROR: feature-store round trip does not reproduce the "
                 "in-memory matrix\n";
    return 1;
  }
  if (!simd.outputs_identical) {
    std::cerr << "ERROR: simd kernel arms disagree on the stump sequence\n";
    return 1;
  }
  return 0;
}
