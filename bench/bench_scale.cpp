// Scale benchmark of the streaming week pipeline: prices the
// simulate→encode chain at 10K/100K/1M lines through the streamed path
// (Simulator::build_tables + stream_save_predictor_dataset, whose
// measurement residency is bounded by the rolling WeekWindowBuffer) and
// reports line throughput and phase-peak RSS (via memprobe.hpp) per
// scale into BENCH_scale.json. At scales where it is tractable the
// materialized path (run() + save_predictor_dataset) runs alongside for
// an apples-to-apples time/RSS comparison; at 1M lines materializing
// every week would cost n_weeks × lines × sizeof(MetricVector) ≈ 5.2 GB
// just for the measurement table, which is exactly what the streamed
// path avoids.
//
// Before the scale runs, an identity section re-proves the streaming
// contract at a small size so a perf refactor cannot silently fork the
// two paths (exit 1 on any divergence):
//   - the streamed week chunks hash bit-identically to the materialized
//     run()'s per-week measurements, at 1 and 8 threads;
//   - the streamed dataset artefact is byte-identical to
//     save_predictor_dataset over the materialized run, at both thread
//     counts;
//   - the full streamed training chain (base-matrix pass →
//     plan_full_encoder → full-matrix pass → mmap → train_from_block)
//     serializes a kernel byte-identical to train() over the
//     materialized dataset, at both thread counts.
//
// The rss_bounded verdict per scale run asserts the point of the PR:
// the stream-encode phase's peak RSS stays under the cost of
// materializing every week's measurements. It is only enforced when
// the kernel's clear_refs watermark reset is available (exact phase
// attribution); on restricted /proc the value is still reported but
// flagged approximate.
//
// Usage: bench_scale [--scales N,N,...] [--lines N (identity scale)]
//                    [--seed S] [--window-weeks W] [--rounds R]
//                    [--out FILE]
#define NEVERMIND_MEMPROBE_IMPL
#include "memprobe.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "features/dataset_io.hpp"
#include "features/encoder.hpp"

namespace {

using namespace nevermind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// FNV-1a over raw bytes — order-sensitive, so hashing week chunks in
/// stream order pins both content and delivery order.
std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hash_week(std::uint64_t h, int week,
                        std::span<const dslsim::MetricVector> measurements) {
  h = fnv1a(&week, sizeof(week), h);
  return fnv1a(measurements.data(),
               measurements.size() * sizeof(dslsim::MetricVector), h);
}

constexpr std::uint64_t kFnvSeed = 0xCBF29CE484222325ULL;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::string scratch_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("bench_scale_") + tag + ".nmarena"))
      .string();
}

core::PredictorConfig predictor_config(std::uint32_t lines, std::size_t rounds,
                                       const exec::ExecContext& exec) {
  core::PredictorConfig cfg;
  cfg.exec = exec;
  cfg.boost_iterations = rounds;
  cfg.top_n = std::max<std::uint32_t>(lines / 100, 10);
  return cfg;
}

features::EncoderConfig base_config() {
  features::EncoderConfig cfg;  // defaults carry no derived features
  cfg.include_quadratic = false;
  cfg.product_pairs.clear();
  return cfg;
}

std::string kernel_text(const core::ScoringKernel& kernel) {
  std::ostringstream os;
  kernel.save(os);
  return os.str();
}

// ---------------------------------------------------------------------
// Identity: streamed vs materialized, at 1 and 8 threads.
// ---------------------------------------------------------------------

struct IdentityResult {
  std::uint32_t lines = 0;
  bool chunks_identical = true;
  bool artefact_identical = true;
  bool kernel_identical = true;
  [[nodiscard]] bool ok() const {
    return chunks_identical && artefact_identical && kernel_identical;
  }
};

/// The streamed training chain the CLI's --stream path runs: base pass,
/// stage-1 plan off the mmap'ed base artefact, full pass, mmap,
/// train_from_block. Returns the serialized kernel.
std::optional<std::string> streamed_chain_kernel(
    const dslsim::Simulator& sim, const dslsim::SimDataset& tables,
    const exec::ExecContext& exec, std::uint32_t lines, std::size_t rounds,
    int window_weeks, int train_from, int train_to) {
  core::TicketPredictor predictor(predictor_config(lines, rounds, exec));
  const features::TicketLabeler labeler{predictor.config().horizon_days};
  features::StreamPipelineOptions opts;
  opts.window_weeks = window_weeks;

  const std::string base_path = scratch_path("chain_base");
  ml::StoreStatus st = features::stream_save_predictor_dataset(
      base_path, sim, tables, exec, train_from, train_to, base_config(),
      labeler, opts);
  if (!st.ok()) {
    std::cerr << "identity: base pass failed: " << st.message << "\n";
    return std::nullopt;
  }
  features::EncoderConfig full_cfg;
  {
    auto base = features::load_predictor_dataset(
        base_path, ml::ArenaLoadMode::kMapped, &st);
    if (!base.has_value()) {
      std::cerr << "identity: base load failed: " << st.message << "\n";
      return std::nullopt;
    }
    full_cfg = predictor.plan_full_encoder(base->block);
  }
  std::filesystem::remove(base_path);

  const std::string full_path = scratch_path("chain_full");
  st = features::stream_save_predictor_dataset(full_path, sim, tables, exec,
                                               train_from, train_to, full_cfg,
                                               labeler, opts);
  if (!st.ok()) {
    std::cerr << "identity: full pass failed: " << st.message << "\n";
    return std::nullopt;
  }
  {
    auto full = features::load_predictor_dataset(
        full_path, ml::ArenaLoadMode::kMapped, &st);
    if (!full.has_value()) {
      std::cerr << "identity: full load failed: " << st.message << "\n";
      return std::nullopt;
    }
    predictor.train_from_block(full->block, full->encoder);
  }
  std::filesystem::remove(full_path);
  return kernel_text(predictor.kernel());
}

IdentityResult run_identity(std::uint32_t lines, std::uint64_t seed,
                            std::size_t rounds, int window_weeks,
                            const bench::PaperSplits& splits) {
  IdentityResult res;
  res.lines = lines;
  dslsim::SimConfig cfg;
  cfg.seed = seed;
  cfg.topology.n_lines = lines;
  const dslsim::Simulator sim(cfg);
  const features::TicketLabeler labeler{core::PredictorConfig{}.horizon_days};

  std::cerr << "identity: materialized reference (" << lines
            << " lines)...\n";
  const exec::ExecContext serial = exec::ExecContext::serial();
  const dslsim::SimDataset data = sim.run(serial);
  std::uint64_t mat_hash = kFnvSeed;
  for (int w = 0; w < data.n_weeks(); ++w) {
    mat_hash = hash_week(mat_hash, w, data.week_measurements(w));
  }
  const std::string mat_path = scratch_path("materialized");
  ml::StoreStatus st = features::save_predictor_dataset(
      mat_path, data, splits.train_from, splits.train_to, base_config(),
      labeler);
  if (!st.ok()) {
    std::cerr << "identity: materialized save failed: " << st.message << "\n";
    res.artefact_identical = false;
    return res;
  }
  const auto mat_artefact = read_file(mat_path);
  std::filesystem::remove(mat_path);

  core::TicketPredictor mat_predictor(
      predictor_config(lines, rounds, serial));
  mat_predictor.train(data, splits.train_from, splits.train_to);
  const std::string mat_kernel = kernel_text(mat_predictor.kernel());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    std::cerr << "identity: streamed path at " << threads
              << " thread(s)...\n";
    const exec::ExecContext exec(threads);
    const dslsim::SimDataset tables = sim.build_tables(exec);

    std::uint64_t stream_hash = kFnvSeed;
    features::StreamPipelineOptions opts;
    opts.window_weeks = window_weeks;
    opts.stream_through = cfg.n_weeks - 1;
    opts.tap = [&](const dslsim::WeekChunk& chunk) {
      stream_hash = hash_week(stream_hash, chunk.week, chunk.measurements);
    };
    const std::string stream_path = scratch_path("streamed");
    st = features::stream_save_predictor_dataset(
        stream_path, sim, tables, exec, splits.train_from, splits.train_to,
        base_config(), labeler, opts);
    if (!st.ok()) {
      std::cerr << "identity: streamed save failed: " << st.message << "\n";
      res.artefact_identical = false;
      return res;
    }
    const auto stream_artefact = read_file(stream_path);
    std::filesystem::remove(stream_path);

    if (stream_hash != mat_hash) {
      std::cerr << "identity FAILED: streamed week chunks diverge from "
                   "run() at "
                << threads << " thread(s)\n";
      res.chunks_identical = false;
    }
    if (!stream_artefact.has_value() || !mat_artefact.has_value() ||
        *stream_artefact != *mat_artefact) {
      std::cerr << "identity FAILED: streamed artefact differs from "
                   "materialized save at "
                << threads << " thread(s)\n";
      res.artefact_identical = false;
    }

    const auto chain_kernel = streamed_chain_kernel(
        sim, tables, exec, lines, rounds, window_weeks, splits.train_from,
        splits.train_to);
    if (!chain_kernel.has_value() || *chain_kernel != mat_kernel) {
      std::cerr << "identity FAILED: streamed-chain kernel differs from "
                   "train() at "
                << threads << " thread(s)\n";
      res.kernel_identical = false;
    }
  }
  return res;
}

// ---------------------------------------------------------------------
// Scale runs: throughput + phase-peak RSS per line count.
// ---------------------------------------------------------------------

struct ScaleRun {
  std::uint32_t lines = 0;
  std::uint64_t rows = 0;
  double tables_s = 0.0;
  std::uint64_t tables_peak_rss_bytes = 0;
  double stream_encode_s = 0.0;
  double stream_lines_per_s = 0.0;
  double stream_line_weeks_per_s = 0.0;
  std::uint64_t stream_peak_rss_bytes = 0;
  std::uint64_t window_budget_bytes = 0;
  std::uint64_t materialized_budget_bytes = 0;
  std::uint64_t artefact_file_bytes = 0;
  double materialized_s = 0.0;
  std::uint64_t materialized_peak_rss_bytes = 0;
  bool rss_exact = false;
  bool rss_bounded = true;
};

ScaleRun run_scale(std::uint32_t lines, std::uint64_t seed, int window_weeks,
                   std::uint32_t materialize_max,
                   const bench::PaperSplits& splits) {
  ScaleRun run;
  run.lines = lines;
  dslsim::SimConfig cfg;
  cfg.seed = seed;
  cfg.topology.n_lines = lines;
  const dslsim::Simulator sim(cfg);
  const exec::ExecContext exec = exec::ExecContext::serial();
  const features::TicketLabeler labeler{core::PredictorConfig{}.horizon_days};
  const int emit_weeks = splits.train_to - splits.train_from + 1;
  const int swept_weeks = splits.train_to + 1;  // history from week 0
  run.rows = static_cast<std::uint64_t>(lines) *
             static_cast<std::uint64_t>(emit_weeks);
  run.window_budget_bytes = static_cast<std::uint64_t>(window_weeks) * lines *
                            sizeof(dslsim::MetricVector);
  run.materialized_budget_bytes = static_cast<std::uint64_t>(cfg.n_weeks) *
                                  lines * sizeof(dslsim::MetricVector);

  std::cerr << "scale " << lines << ": building tables...\n";
  std::optional<dslsim::SimDataset> tables;
  {
    const bench::memprobe::PhaseRssProbe probe;
    const auto start = Clock::now();
    tables = sim.build_tables(exec);
    run.tables_s = seconds_since(start);
    run.tables_peak_rss_bytes = probe.sample().bytes;
  }

  std::cerr << "scale " << lines << ": streaming encode (weeks "
            << splits.train_from << "-" << splits.train_to << ", window "
            << window_weeks << ")...\n";
  const std::string path = scratch_path("scale");
  {
    features::StreamPipelineOptions opts;
    opts.window_weeks = window_weeks;
    const bench::memprobe::PhaseRssProbe probe;
    const auto start = Clock::now();
    const ml::StoreStatus st = features::stream_save_predictor_dataset(
        path, sim, *tables, exec, splits.train_from, splits.train_to,
        base_config(), labeler, opts);
    run.stream_encode_s = seconds_since(start);
    const auto peak = probe.sample();
    run.stream_peak_rss_bytes = peak.bytes;
    run.rss_exact = peak.exact;
    if (!st.ok()) {
      std::cerr << "scale " << lines << ": streamed save failed: "
                << st.message << "\n";
      return run;
    }
  }
  std::error_code ec;
  run.artefact_file_bytes = std::filesystem::file_size(path, ec);
  std::filesystem::remove(path);
  if (run.stream_encode_s > 0.0) {
    run.stream_lines_per_s = lines / run.stream_encode_s;
    run.stream_line_weeks_per_s =
        static_cast<double>(lines) * swept_weeks / run.stream_encode_s;
  }
  // The bound this PR exists to honour: streaming must cost less
  // resident memory than materializing every week's measurements.
  // Only a verdict when phase attribution is exact.
  run.rss_bounded = !run.rss_exact ||
                    run.stream_peak_rss_bytes < run.materialized_budget_bytes;
  tables.reset();

  if (lines <= materialize_max) {
    std::cerr << "scale " << lines
              << ": materialized run() + encode for comparison...\n";
    const bench::memprobe::PhaseRssProbe probe;
    const auto start = Clock::now();
    const dslsim::SimDataset data = sim.run(exec);
    const std::string mat_path = scratch_path("scale_mat");
    const ml::StoreStatus st = features::save_predictor_dataset(
        mat_path, data, splits.train_from, splits.train_to, base_config(),
        labeler);
    run.materialized_s = seconds_since(start);
    run.materialized_peak_rss_bytes = probe.sample().bytes;
    std::filesystem::remove(mat_path);
    if (!st.ok()) {
      std::cerr << "scale " << lines << ": materialized save failed: "
                << st.message << "\n";
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> scales = {10000, 100000, 1000000};
  std::uint32_t identity_lines = 10000;
  std::uint64_t seed = 42;
  std::size_t rounds = 60;
  int window_weeks = 8;
  std::uint32_t materialize_max = 100000;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--scales")) {
      scales.clear();
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        scales.push_back(
            static_cast<std::uint32_t>(std::strtoul(p, &end, 10)));
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (flag("--lines")) {
      identity_lines =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--rounds")) {
      rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (flag("--window-weeks")) {
      window_weeks = static_cast<int>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--materialize-max")) {
      materialize_max =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }
  if (scales.empty() || identity_lines == 0 || window_weeks < 1) {
    std::cerr << "bench_scale: nothing to do (empty --scales, zero --lines "
                 "or --window-weeks < 1)\n";
    return 2;
  }

  const bench::PaperSplits splits;
  const IdentityResult identity =
      run_identity(identity_lines, seed, rounds, window_weeks, splits);

  std::vector<ScaleRun> runs;
  runs.reserve(scales.size());
  for (const std::uint32_t lines : scales) {
    runs.push_back(
        run_scale(lines, seed, window_weeks, materialize_max, splits));
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"scale\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"window_weeks\": " << window_weeks << ",\n"
       << "  \"identity\": {\n"
       << "    \"lines\": " << identity.lines << ",\n"
       << "    \"rounds\": " << rounds << ",\n"
       << "    \"chunks_identical\": "
       << (identity.chunks_identical ? "true" : "false") << ",\n"
       << "    \"artefact_identical\": "
       << (identity.artefact_identical ? "true" : "false") << ",\n"
       << "    \"kernel_identical\": "
       << (identity.kernel_identical ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    json << "    {\n"
         << "      \"lines\": " << r.lines << ",\n"
         << "      \"rows\": " << r.rows << ",\n"
         << "      \"tables_s\": " << r.tables_s << ",\n"
         << "      \"tables_peak_rss_bytes\": " << r.tables_peak_rss_bytes
         << ",\n"
         << "      \"stream_encode_s\": " << r.stream_encode_s << ",\n"
         << "      \"stream_lines_per_s\": " << r.stream_lines_per_s << ",\n"
         << "      \"stream_line_weeks_per_s\": " << r.stream_line_weeks_per_s
         << ",\n"
         << "      \"stream_peak_rss_bytes\": " << r.stream_peak_rss_bytes
         << ",\n"
         << "      \"window_budget_bytes\": " << r.window_budget_bytes
         << ",\n"
         << "      \"materialized_budget_bytes\": "
         << r.materialized_budget_bytes << ",\n"
         << "      \"artefact_file_bytes\": " << r.artefact_file_bytes
         << ",\n"
         << "      \"materialized_s\": " << r.materialized_s << ",\n"
         << "      \"materialized_peak_rss_bytes\": "
         << r.materialized_peak_rss_bytes << ",\n"
         << "      \"rss_exact\": " << (r.rss_exact ? "true" : "false")
         << ",\n"
         << "      \"rss_bounded\": " << (r.rss_bounded ? "true" : "false")
         << "\n    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();

  if (!identity.ok()) {
    std::cerr << "ERROR: streamed path diverges from the materialized path\n";
    return 1;
  }
  for (const ScaleRun& r : runs) {
    if (!r.rss_bounded) {
      std::cerr << "ERROR: stream-encode peak RSS at " << r.lines
                << " lines exceeds the materialized measurement budget\n";
      return 1;
    }
  }
  return 0;
}
