// Extension bench (paper §6.1's deferred improvements, implemented):
// dispatch time under three test orderings —
//   1. experience (prior frequency, the technician's status quo),
//   2. the combined locator's probability order (the paper's system),
//   3. cost-aware order p_i / t_i with location-aware travel batching
//      (the paper's "second and third improvements", left as future
//      work there).
// Dispatch time is simulated with a heterogeneous technician workforce:
// per-location test times, travel between major locations, skill.
#include <iostream>

#include "bench_common.hpp"
#include "core/trouble_locator.hpp"
#include "core/workforce.hpp"
#include "util/stats.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 40000);
  util::print_banner(std::cout,
                     "Extension — cost-aware dispatch planning vs probability "
                     "and experience orderings");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;

  core::LocatorConfig cfg;
  cfg.min_occurrences = std::max<std::size_t>(10, args.n_lines / 2000);
  std::cout << "training locator...\n";
  core::TroubleLocator locator(cfg);
  locator.train(data, splits.locator_train_from, splits.locator_train_to);

  const auto test = features::encode_at_dispatch(
      data, splits.locator_test_from, splits.locator_test_to, cfg.encoder);

  auto is_covered = [&](dslsim::DispositionId d) {
    for (auto c : locator.covered()) {
      if (c == d) return true;
    }
    return false;
  };

  util::Rng tech_rng(args.seed ^ 0x7EC4);
  struct Totals {
    double minutes = 0.0;
    double tests = 0.0;
    double hops = 0.0;
    std::size_t found = 0;
    std::size_t dispatches = 0;
  };
  Totals experience;
  Totals probability;
  Totals cost_aware;

  std::vector<float> row(test.dataset.n_cols());
  for (std::size_t r = 0; r < test.dataset.n_rows(); ++r) {
    const auto& note = data.notes()[test.note_of_row[r]];
    if (!is_covered(note.disposition)) continue;
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = test.dataset.at(r, j);

    const core::TechnicianProfile tech = core::sample_technician(tech_rng);
    const auto by_prior =
        locator.rank(row, core::LocatorModelKind::kExperience);
    const auto by_prob = locator.rank(row, core::LocatorModelKind::kCombined);
    const auto by_cost =
        core::plan_cost_aware(by_prob, data.catalog(), tech);

    const auto account = [&](Totals& t,
                             std::span<const core::RankedDisposition> plan) {
      const auto sim = core::simulate_dispatch(plan, note.disposition,
                                               data.catalog(), tech);
      t.minutes += sim.minutes;
      t.tests += static_cast<double>(sim.tests_run);
      t.hops += static_cast<double>(sim.location_changes);
      t.found += sim.found ? 1 : 0;
      ++t.dispatches;
    };
    account(experience, by_prior);
    account(probability, by_prob);
    account(cost_aware, by_cost);
  }

  util::Table table({"ordering", "mean minutes", "mean tests",
                     "mean location hops", "found"});
  const auto emit = [&](const char* name, const Totals& t) {
    const double n = std::max<double>(static_cast<double>(t.dispatches), 1.0);
    table.add_row({name, util::fmt_double(t.minutes / n, 1),
                   util::fmt_double(t.tests / n, 2),
                   util::fmt_double(t.hops / n, 2),
                   util::fmt_percent(static_cast<double>(t.found) / n)});
  };
  emit("experience (prior)", experience);
  emit("combined locator (probability)", probability);
  emit("cost-aware (p/t + travel batching)", cost_aware);
  table.print(std::cout);

  std::cout << "\ndispatches evaluated: " << experience.dispatches
            << "\nExpected shape: probability ordering beats experience; "
               "cost-aware ordering shaves further minutes by front-loading "
               "quick home-network checks and batching same-location "
               "tests.\n";
  return 0;
}
