// Reproduces the §5.2 "customers not on site" analysis: among incorrect
// predictions for lines covered by the daily byte feed (two BRAS
// servers in the paper), how many show zero traffic from one week
// before to one week after the prediction — customers who plausibly
// had a real problem but never noticed because they were away.
// Paper: 18 of 108 byte-feed subscribers with incorrect predictions
// (16.7%) were not on site.
#include <iostream>

#include "bench_common.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Sec 5.2 — incorrect predictions explained by the "
                     "customer not being on site");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t top_n = bench::scaled_top_n(args.n_lines);

  core::PredictorConfig cfg;
  cfg.top_n = top_n;
  std::cout << "training predictor...\n";
  core::TicketPredictor predictor(cfg);
  predictor.train(data, splits.train_from, splits.train_to);

  std::size_t feed_incorrect = 0;
  std::size_t not_on_site = 0;
  std::size_t not_on_site_with_fault = 0;
  for (int week = splits.test_from; week <= splits.test_to; ++week) {
    const auto ranked = predictor.predict_week(data, week);
    const util::Day day = util::saturday_of_week(week);
    for (std::size_t i = 0; i < top_n && i < ranked.size(); ++i) {
      const dslsim::LineId line = ranked[i].line;
      const auto next = data.next_edge_ticket_after(line, day);
      const bool incorrect =
          !next.has_value() || *next > day + cfg.horizon_days;
      if (!incorrect || !data.in_byte_feed(line)) continue;
      ++feed_incorrect;

      bool any_traffic = false;
      for (util::Day d = day - 7; d <= day + 7; ++d) {
        const auto mb = data.bytes_on_day(line, d);
        if (mb.has_value() && *mb > 0.0) {
          any_traffic = true;
          break;
        }
      }
      if (!any_traffic) {
        ++not_on_site;
        if (data.fault_active(line, day)) ++not_on_site_with_fault;
      }
    }
  }

  std::cout << "incorrect predictions under the byte-feed BRAS servers: "
            << feed_incorrect << "\n"
            << "  with zero traffic in [t-1w, t+1w] (not on site): "
            << not_on_site << " ("
            << util::fmt_percent(
                   feed_incorrect > 0
                       ? static_cast<double>(not_on_site) /
                             static_cast<double>(feed_incorrect)
                       : 0.0)
            << ")\n"
            << "  of those, ground truth confirms a live fault: "
            << not_on_site_with_fault << "\n\n"
            << "Paper: 18 of 108 (16.7%) byte-feed subscribers with "
               "incorrect predictions were not on site — plausibly real "
               "problems nobody was home to notice.\n";
  return 0;
}
