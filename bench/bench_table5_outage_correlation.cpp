// Reproduces Table 5 (§5.2, "Outage problems and IVR"): how many
// "incorrect" predictions are explained by DSLAM outages whose IVR
// absorbed the customer's call, and the logistic-regression evidence
// that per-DSLAM prediction counts foreshadow outages.
//
// Paper values: 12.7 / 18.4 / 26.4 / 31.5 % of incorrect predictions
// have an outage on their DSLAM within T = 1..4 weeks; the regression
// logit(outage) ~ #predictions has a positive coefficient with
// p-value < 0.05 at every horizon.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "ml/logreg.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Table 5 — incorrect predictions explained by outages; "
                     "prediction counts vs future outages");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t top_n = bench::scaled_top_n(args.n_lines);

  core::PredictorConfig cfg;
  cfg.top_n = top_n;
  std::cout << "training predictor...\n";
  core::TicketPredictor predictor(cfg);
  predictor.train(data, splits.train_from, splits.train_to);

  // Collect per test week: the top-budget predictions, which of them
  // are incorrect (no edge ticket within 4 weeks), and per-DSLAM
  // prediction counts.
  struct WeekPredictions {
    util::Day day;
    std::vector<dslsim::LineId> incorrect;
    std::map<dslsim::DslamId, int> counts;
  };
  std::vector<WeekPredictions> weeks;
  std::size_t total_incorrect = 0;
  for (int week = splits.test_from; week <= splits.test_to; ++week) {
    const auto ranked = predictor.predict_week(data, week);
    WeekPredictions wp;
    wp.day = util::saturday_of_week(week);
    for (std::size_t i = 0; i < top_n && i < ranked.size(); ++i) {
      const dslsim::LineId line = ranked[i].line;
      ++wp.counts[data.topology().dslam_of(line)];
      const auto next = data.next_edge_ticket_after(line, wp.day);
      if (!next.has_value() || *next > wp.day + cfg.horizon_days) {
        wp.incorrect.push_back(line);
      }
    }
    total_incorrect += wp.incorrect.size();
    weeks.push_back(std::move(wp));
  }
  std::cout << "incorrect predictions across " << weeks.size()
            << " test weeks: " << total_incorrect << " of "
            << weeks.size() * top_n << "\n\n";

  util::Table table({"horizon T", "% incorrect explained by outage",
                     "coef (#predictions)", "p-value"});
  for (int t_weeks = 1; t_weeks <= 4; ++t_weeks) {
    const int horizon = t_weeks * 7;

    // Row 1: incorrect predictions whose DSLAM had an outage within T.
    std::size_t explained = 0;
    for (const auto& wp : weeks) {
      for (dslsim::LineId line : wp.incorrect) {
        if (data.dslam_outage_within(data.topology().dslam_of(line), wp.day,
                                     wp.day + horizon)) {
          ++explained;
        }
      }
    }
    const double pct = total_incorrect > 0
                           ? static_cast<double>(explained) /
                                 static_cast<double>(total_incorrect)
                           : 0.0;

    // Rows 2-3: logistic regression outage(d, t, T) ~ #predictions(d, t)
    // over every (DSLAM, test week) cell.
    std::vector<double> x;
    std::vector<std::uint8_t> y;
    for (const auto& wp : weeks) {
      for (dslsim::DslamId d = 0; d < data.topology().n_dslams(); ++d) {
        const auto it = wp.counts.find(d);
        x.push_back(it == wp.counts.end() ? 0.0
                                          : static_cast<double>(it->second));
        y.push_back(data.dslam_outage_within(d, wp.day, wp.day + horizon) ? 1
                                                                          : 0);
      }
    }
    const ml::LogisticModel reg = ml::fit_logistic_simple(x, y);

    table.add_row({std::to_string(t_weeks) + " week" + (t_weeks > 1 ? "s" : ""),
                   util::fmt_percent(pct),
                   util::fmt_double(reg.coefficients[1], 4),
                   util::fmt_double(reg.p_values[1], 4)});
  }
  table.print(std::cout);

  std::cout << "\nPaper: 12.7 -> 31.5% explained as T grows 1 -> 4 weeks; "
               "coefficient positive with p < 0.05 at every T.\n";
  return 0;
}
