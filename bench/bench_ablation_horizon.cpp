// Ablation A3 (§4.1): the prediction horizon T. The paper chooses
// T = 4 weeks so that slow-burn problems (intermittent connections,
// away customers) have time to be reported; shorter horizons target
// only connection-killing faults. This sweep shows base rate and
// achieved accuracy across T.
#include <iostream>

#include "bench_common.hpp"
#include "ml/metrics.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 12000);
  util::print_banner(std::cout,
                     "Ablation A3 — prediction horizon T (paper: 4 weeks)");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const bench::PaperSplits splits;
  const std::size_t budget = bench::scaled_top_n(args.n_lines);
  const int n_test_weeks = splits.test_to - splits.test_from + 1;
  const std::size_t cutoff = budget * static_cast<std::size_t>(n_test_weeks);

  util::Table table({"horizon T", "positive rate", "accuracy at 1x budget",
                     "lift over random"});
  for (const int horizon_days : {7, 14, 28, 56}) {
    core::PredictorConfig cfg;
    cfg.top_n = budget;
    cfg.horizon_days = horizon_days;
    cfg.use_derived_features = false;
    std::cout << "training with T = " << horizon_days << " days...\n";
    core::TicketPredictor predictor(cfg);
    predictor.train(data, splits.train_from, splits.train_to);

    const features::TicketLabeler labeler{horizon_days};
    const auto test =
        features::encode_weeks(data, splits.test_from, splits.test_to,
                               predictor.full_encoder_config(), labeler);
    const auto scores = predictor.score_block(test);
    const std::size_t cuts[] = {cutoff};
    const auto prec = ml::precision_curve(scores, test.dataset.labels(), cuts);
    const double base_rate =
        static_cast<double>(test.dataset.positives()) /
        static_cast<double>(test.dataset.n_rows());
    table.add_row(
        {std::to_string(horizon_days / 7) + " week(s)",
         util::fmt_percent(base_rate, 2), util::fmt_percent(prec[0]),
         util::fmt_double(base_rate > 0 ? prec[0] / base_rate : 0.0, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: absolute accuracy grows with T (more "
               "tickets qualify) while the lift over random shrinks; T = 4 "
               "weeks balances the two, as the paper argues.\n";
  return 0;
}
