// Footnote 4 of the paper: training the 800-round BStump on 1M records
// took ~2 hours on a 2009 server, and ranking several million lines
// took under 15 minutes. This google-benchmark binary measures our
// implementation's training and ranking throughput so the scaling
// claim (linear in rows x features x rounds) can be checked on any
// machine.
#include <benchmark/benchmark.h>

#include "ml/adaboost.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace nevermind;

ml::FeatureArena make_dataset(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  std::vector<ml::ColumnInfo> infos(cols);
  for (std::size_t j = 0; j < cols; ++j) {
    infos[j] = {"f" + std::to_string(j), false};
  }
  ml::FeatureArena d(std::move(infos), rows);
  util::Rng rng(seed);
  std::vector<float> row(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const bool positive = rng.bernoulli(0.02);
    for (std::size_t j = 0; j < cols; ++j) {
      const double signal = j < 5 && positive ? 1.5 : 0.0;
      row[j] = static_cast<float>(rng.normal() + signal);
    }
    d.add_row(row, positive);
  }
  return d;
}

void BM_TrainBStump(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto iterations = static_cast<std::size_t>(state.range(1));
  const ml::FeatureArena d = make_dataset(rows, 25, 7);
  ml::BStumpConfig cfg;
  cfg.iterations = iterations;
  for (auto _ : state) {
    const ml::BStumpModel model = ml::train_bstump(d, cfg);
    benchmark::DoNotOptimize(model.stumps().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows) *
                          static_cast<std::int64_t>(iterations));
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["rounds"] = static_cast<double>(iterations);
}
BENCHMARK(BM_TrainBStump)
    ->Args({5000, 50})
    ->Args({20000, 50})
    ->Args({80000, 50})
    ->Args({20000, 200})
    ->Unit(benchmark::kMillisecond);

void BM_RankLines(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ml::FeatureArena train = make_dataset(20000, 25, 8);
  const ml::FeatureArena score_set = make_dataset(rows, 25, 9);
  ml::BStumpConfig cfg;
  cfg.iterations = 200;
  const ml::BStumpModel model = ml::train_bstump(train, cfg);
  for (auto _ : state) {
    const auto scores = model.score_dataset(score_set);
    const auto order = ml::rank_by_score(scores);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_RankLines)
    ->Arg(50000)
    ->Arg(200000)
    ->Arg(500000)
    ->Unit(benchmark::kMillisecond);

void BM_SingleFeatureSelectionScore(benchmark::State& state) {
  // The per-feature cost of the AP(N) selection pass.
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ml::FeatureArena d = make_dataset(rows, 25, 10);
  ml::BStumpConfig cfg;
  cfg.iterations = 12;
  std::size_t feature = 0;
  for (auto _ : state) {
    const auto model = ml::train_bstump_single_feature(d, feature % 25, cfg);
    benchmark::DoNotOptimize(model.stumps().data());
    ++feature;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_SingleFeatureSelectionScore)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
