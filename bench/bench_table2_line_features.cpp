// Reproduces Table 2: the 25 weekly line-test metrics, with summary
// statistics from one simulated Saturday — a sanity check that the
// measurement substrate produces physically plausible values (bit rates
// capped by profiles, attenuation growing with loop length, counters
// heavy-tailed) and the expected missing-record rate (modem off).
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace nevermind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  util::print_banner(std::cout,
                     "Table 2 — the 25 line features, one simulated Saturday");
  std::cout << "lines=" << args.n_lines << " seed=" << args.seed << "\n";

  const dslsim::SimDataset data =
      dslsim::Simulator(bench::default_sim(args)).run();
  const int week = util::test_week_of(util::day_from_date(8, 1));
  std::cout << "week " << week << " ("
            << util::format_date(util::saturday_of_week(week)) << ")\n\n";

  std::array<util::RunningStats, dslsim::kNumLineMetrics> stats;
  std::size_t missing = 0;
  for (dslsim::LineId u = 0; u < data.n_lines(); ++u) {
    const auto& m = data.measurement(week, u);
    if (!dslsim::record_present(m)) {
      ++missing;
      continue;
    }
    for (std::size_t i = 0; i < dslsim::kNumLineMetrics; ++i) {
      if (!ml::is_missing(m[i])) stats[i].add(m[i]);
    }
  }

  util::Table table({"feature", "mean", "stddev", "min", "max"});
  for (std::size_t i = 0; i < dslsim::kNumLineMetrics; ++i) {
    table.add_row({std::string(dslsim::metric_name(i)),
                   util::fmt_double(stats[i].mean(), 1),
                   util::fmt_double(stats[i].stddev(), 1),
                   util::fmt_double(stats[i].min(), 1),
                   util::fmt_double(stats[i].max(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nmissing records (modem off during the test): " << missing
            << " of " << data.n_lines() << " ("
            << util::fmt_percent(static_cast<double>(missing) /
                                 static_cast<double>(data.n_lines()))
            << ")\n";
  return 0;
}
