// Shared helpers for the benchmark harness: canonical simulation
// configurations, the paper's calendar splits, and evaluation plumbing
// every bench binary reuses so that figures/tables come from one
// consistent experimental setup.
//
// Scale note: the paper ranks millions of lines and submits the top
// 20K (~1%) to ATDS. Benches default to tens of thousands of simulated
// lines with the budget kept at the same ~1% ratio; pass a line count
// argv[1] and seed argv[2] to any bench to rescale.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "features/encoder.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

namespace nevermind::bench {

struct BenchArgs {
  std::uint32_t n_lines = 20000;
  std::uint64_t seed = 42;
};

inline BenchArgs parse_args(int argc, char** argv,
                            std::uint32_t default_lines = 20000) {
  BenchArgs args;
  args.n_lines = default_lines;
  if (argc > 1) args.n_lines = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) args.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  return args;
}

/// The paper's evaluation calendar (Section 5): predictor trains on
/// 08/01-09/30 measurements, tests on 4 contiguous weeks from 10/31,
/// history features accumulate from 01/01. Locator splits (Section
/// 6.3): 7 weeks 08/01-09/18 train, 7 weeks 09/19-11/06 test.
struct PaperSplits {
  int train_from = util::test_week_of(util::day_from_date(8, 1));
  int train_to = util::test_week_of(util::day_from_date(9, 30));
  int test_from = util::test_week_of(util::day_from_date(10, 31));
  int test_to = util::test_week_of(util::day_from_date(10, 31)) + 3;
  int locator_train_from = util::test_week_of(util::day_from_date(8, 1));
  int locator_train_to = util::test_week_of(util::day_from_date(9, 18));
  int locator_test_from = util::test_week_of(util::day_from_date(9, 19));
  int locator_test_to = util::test_week_of(util::day_from_date(11, 6));
};

/// Canonical simulation config for benches.
inline dslsim::SimConfig default_sim(const BenchArgs& args) {
  dslsim::SimConfig cfg;
  cfg.seed = args.seed;
  cfg.topology.n_lines = args.n_lines;
  return cfg;
}

/// The weekly ATDS budget at simulation scale: the paper's 20K of
/// ~2.5M lines (~0.8%); we round to 1%.
inline std::size_t scaled_top_n(std::uint32_t n_lines) {
  return std::max<std::size_t>(n_lines / 100, 10);
}

/// "Number of predictions selected" cutoffs for accuracy curves, as
/// multiples of the weekly budget (the paper's x-axis runs to 10x the
/// 20K capacity).
inline std::vector<std::size_t> budget_cutoffs(std::size_t top_n,
                                               std::size_t n_rows) {
  const double multiples[] = {0.25, 0.5, 1.0, 2.0, 4.0, 7.0, 10.0};
  std::vector<std::size_t> cutoffs;
  for (double m : multiples) {
    const auto k = static_cast<std::size_t>(m * static_cast<double>(top_n));
    if (k >= 1 && k <= n_rows) cutoffs.push_back(k);
  }
  return cutoffs;
}

}  // namespace nevermind::bench
