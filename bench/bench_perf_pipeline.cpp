// Wall-clock benchmark of the full proactive pipeline under the shared
// execution engine: simulate a year, train both components, run one
// proactive Saturday — at 1, 2, and hardware_concurrency threads — and
// emit a machine-readable BENCH_pipeline.json with the timings and the
// speedups relative to the serial run. Also cross-checks that the
// ranked predictions are identical at every thread count (the exec
// layer's determinism contract) and reports `deterministic` in the
// JSON.
//
// Usage: bench_perf_pipeline [--lines N] [--seed S] [--out FILE]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/nevermind.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"

namespace {

using namespace nevermind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Timing {
  std::size_t threads = 1;
  double simulate_s = 0.0;
  double train_s = 0.0;
  double run_week_s = 0.0;
  std::vector<core::Prediction> predictions;
};

Timing run_at(std::size_t threads, std::uint32_t lines, std::uint64_t seed) {
  Timing t;
  t.threads = threads;
  const exec::ExecContext exec =
      threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();

  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = seed;
  sim_cfg.topology.n_lines = lines;
  auto start = Clock::now();
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run(exec);
  t.simulate_s = seconds_since(start);

  core::NevermindConfig cfg;
  cfg.exec = exec;
  cfg.predictor.top_n = std::max<std::size_t>(lines / 100, 10);
  cfg.predictor.boost_iterations = 120;
  cfg.locator.min_occurrences = std::max<std::size_t>(6, lines / 2000);
  cfg.locator.boost_iterations = 40;
  cfg.atds.weekly_capacity = cfg.predictor.top_n;
  core::Nevermind system(cfg);

  start = Clock::now();
  system.train(data, 30, 38, 20, 36);
  t.train_s = seconds_since(start);

  start = Clock::now();
  core::WeeklyCycle cycle = system.run_week(data, 43);
  t.run_week_s = seconds_since(start);
  t.predictions = std::move(cycle.predictions);
  return t;
}

bool identical(const std::vector<core::Prediction>& a,
               const std::vector<core::Prediction>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].line != b[i].line || a[i].score != b[i].score ||
        a[i].probability != b[i].probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t lines = 4000;
  std::uint64_t seed = 42;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--lines")) {
      lines = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag("--out")) {
      out_path = argv[++i];
    }
  }

  std::vector<std::size_t> thread_counts{1, 2};
  const std::size_t hw = std::max<std::size_t>(
      std::thread::hardware_concurrency(), 1);
  if (hw > 2) thread_counts.push_back(hw);

  std::vector<Timing> timings;
  for (const std::size_t n : thread_counts) {
    std::cerr << "pipeline at " << n << " thread(s)...\n";
    timings.push_back(run_at(n, lines, seed));
  }

  bool deterministic = true;
  for (std::size_t i = 1; i < timings.size(); ++i) {
    deterministic =
        deterministic &&
        identical(timings[0].predictions, timings[i].predictions);
  }

  const double serial_total =
      timings[0].simulate_s + timings[0].train_s + timings[0].run_week_s;
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"pipeline\",\n"
       << "  \"lines\": " << lines << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const Timing& t = timings[i];
    const double total = t.simulate_s + t.train_s + t.run_week_s;
    json << "    {\"threads\": " << t.threads
         << ", \"simulate_s\": " << t.simulate_s
         << ", \"train_s\": " << t.train_s
         << ", \"run_week_s\": " << t.run_week_s
         << ", \"total_s\": " << total
         << ", \"speedup\": " << (total > 0 ? serial_total / total : 0.0)
         << "}" << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream(out_path) << json.str();
  std::cout << json.str();
  if (!deterministic) {
    std::cerr << "ERROR: predictions differ across thread counts\n";
    return 1;
  }
  return 0;
}
